//! Crash-safe checkpoints: a length-prefixed, checksummed frame around the
//! full training state, committed by temp-file + atomic rename.
//!
//! ## Frame format (DESIGN.md §"Fault model and recovery")
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"BSOMCKPT"
//! 8       4     format version, u32 little-endian (currently 1)
//! 12      8     payload length `L`, u64 little-endian
//! 20      L     payload: the checkpoint document as JSON
//! 20+L    8     FNV-1a-64 checksum of bytes [0, 20+L), u64 little-endian
//! ```
//!
//! The checksum covers the header too, so a torn prefix, a truncated tail
//! and a flipped bit anywhere in the file are all rejected with a typed
//! [`CheckpointError`] — never a panic, never a silently-wrong map. The
//! payload reuses the validating serde of [`bsom_som::BSom`] (neuron
//! shapes, probabilities, non-zero RNG state), plus the engine-level checks
//! in `CheckpointDoc::validate` (private).
//!
//! Writes go to `<path>.tmp` in the same directory, are flushed with
//! `sync_all`, and only then renamed over `path` — on every POSIX
//! filesystem the rename is atomic, so `path` always holds either the old
//! complete checkpoint or the new complete checkpoint, regardless of where
//! a crash lands (the `checkpoint.write` failpoint sits exactly between
//! write and rename to prove it).
//!
//! Checkpoints are written by [`Trainer::write_checkpoint`] and restored by
//! [`SomService::resume_from_checkpoint`]; `examples/crash_recovery.rs`
//! walks the full train → checkpoint → crash → resume loop.
//!
//! [`Trainer::write_checkpoint`]: crate::Trainer::write_checkpoint
//! [`SomService::resume_from_checkpoint`]: crate::SomService::resume_from_checkpoint

use std::error::Error;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

use bsom_som::{BSom, BSomConfig, SelfOrganizingMap, TrainSchedule};
use serde::{Deserialize, Serialize};

use crate::throughput::{measure, MeasuredThroughput};
use crate::EngineConfig;

/// The frame's leading magic bytes.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"BSOMCKPT";
/// The frame format this build writes and the only one it accepts.
pub const CHECKPOINT_FORMAT: u32 = 1;
/// Bytes before the payload: magic (8) + format (4) + payload length (8).
pub const CHECKPOINT_HEADER_LEN: usize = 20;
/// Trailing checksum bytes.
pub const CHECKPOINT_CHECKSUM_LEN: usize = 8;

/// Errors loading or storing a checkpoint. Every way a file can be wrong —
/// torn, truncated, bit-flipped, or semantically invalid — maps to a typed
/// variant; loading never panics on bad bytes (the `checkpoint_corruption`
/// proptest suite flips and truncates at random offsets to prove it).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be read, written, synced, or renamed.
    Io {
        /// The failing operation's error, rendered.
        message: String,
    },
    /// Shorter than even an empty frame (header + checksum).
    TooShort {
        /// Actual file length in bytes.
        len: usize,
    },
    /// The first eight bytes are not [`CHECKPOINT_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 8],
    },
    /// The frame declares a format this build does not understand.
    UnsupportedFormat {
        /// The declared format version.
        found: u32,
    },
    /// The declared payload length runs past the end of the file — a torn
    /// (partially-written) frame.
    Truncated {
        /// Payload bytes the header declares.
        declared: u64,
        /// Payload bytes actually present.
        available: u64,
    },
    /// Extra bytes follow the checksum.
    TrailingBytes {
        /// How many.
        extra: u64,
    },
    /// The stored checksum does not match the frame's content — a flipped
    /// bit or an overwritten region.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum computed over the frame's bytes.
        computed: u64,
    },
    /// The frame is intact but the payload fails JSON/serde/semantic
    /// validation (including every invariant of [`bsom_som::BSom`]'s own
    /// validating deserializer).
    Invalid {
        /// What failed.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { message } => write!(f, "checkpoint io error: {message}"),
            CheckpointError::TooShort { len } => write!(
                f,
                "checkpoint too short: {len} bytes < {} header + {} checksum",
                CHECKPOINT_HEADER_LEN, CHECKPOINT_CHECKSUM_LEN
            ),
            CheckpointError::BadMagic { found } => {
                write!(f, "checkpoint magic mismatch: found {found:02x?}")
            }
            CheckpointError::UnsupportedFormat { found } => write!(
                f,
                "checkpoint format {found} unsupported (this build reads {CHECKPOINT_FORMAT})"
            ),
            CheckpointError::Truncated {
                declared,
                available,
            } => write!(
                f,
                "checkpoint truncated: header declares {declared} payload bytes, {available} present"
            ),
            CheckpointError::TrailingBytes { extra } => {
                write!(f, "checkpoint has {extra} trailing bytes after the checksum")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Invalid { message } => {
                write!(f, "checkpoint payload invalid: {message}")
            }
        }
    }
}

impl Error for CheckpointError {}

impl CheckpointError {
    fn io(error: std::io::Error) -> Self {
        CheckpointError::Io {
            message: error.to_string(),
        }
    }
}

/// What [`Trainer::write_checkpoint`] reports about a committed checkpoint.
///
/// [`Trainer::write_checkpoint`]: crate::Trainer::write_checkpoint
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Total bytes of the framed checkpoint file.
    pub bytes: u64,
    /// The service snapshot version recorded in the checkpoint.
    pub version: u64,
}

/// One neuron's decayed win statistics, serialization form: win weights are
/// stored as raw `f64` bits so the decayed majorities — and therefore the
/// labels a resumed service publishes — round-trip *exactly*, immune to any
/// float-to-decimal-and-back drift in the JSON layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct NeuronStatsDoc {
    /// Feed-step clock of the neuron's most recent recorded win.
    pub(crate) last_step: u64,
    /// `(label id, win weight as f64 bits)` pairs, ascending by label.
    pub(crate) wins: Vec<(u64, u64)>,
}

/// The checkpoint payload: everything needed to continue training
/// bit-identically and rebuild the same service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct CheckpointDoc {
    /// Latest published snapshot version at write time.
    pub(crate) service_version: u64,
    /// The map — weights, `#`-counts (rebuilt by its validating serde) and
    /// the xorshift64* RNG position.
    pub(crate) som: BSom,
    /// The trainer's schedule.
    pub(crate) schedule: TrainSchedule,
    /// Epochs of the schedule completed.
    pub(crate) epochs_run: usize,
    /// Feed steps completed.
    pub(crate) steps_run: u64,
    /// Feed steps since the last publish (continues the publish cadence).
    pub(crate) steps_since_publish: u64,
    /// The service construction config.
    pub(crate) config: EngineConfig,
    /// Per-neuron decayed win statistics.
    pub(crate) stats: Vec<NeuronStatsDoc>,
}

impl CheckpointDoc {
    /// Engine-level semantic validation on top of the serde layer: the
    /// stats table must match the map, win weights must be positive finite
    /// numbers, and the stored config must satisfy the same invariants the
    /// [`EngineConfig`](crate::EngineConfig) builders assert.
    pub(crate) fn validate(&self) -> Result<(), CheckpointError> {
        let invalid = |message: String| Err(CheckpointError::Invalid { message });
        if self.stats.len() != self.som.neuron_count() {
            return invalid(format!(
                "{} stats entries for {} neurons",
                self.stats.len(),
                self.som.neuron_count()
            ));
        }
        for (index, stat) in self.stats.iter().enumerate() {
            for &(label, weight_bits) in &stat.wins {
                let weight = f64::from_bits(weight_bits);
                if !weight.is_finite() || weight <= 0.0 {
                    return invalid(format!(
                        "neuron {index} label {label}: win weight {weight} must be finite and positive"
                    ));
                }
            }
        }
        if let Some(decay) = self.config.label_decay {
            if !(decay > 0.0 && decay < 1.0) {
                return invalid(format!("label decay {decay} outside (0, 1)"));
            }
        }
        if self.config.publish_every_steps == Some(0) {
            return invalid("publish cadence of zero steps".to_string());
        }
        if self.config.queue_capacity == Some(0) {
            return invalid("queue capacity of zero".to_string());
        }
        Ok(())
    }
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to catch
/// torn writes and bit flips (this is corruption *detection*, not an
/// adversarial MAC).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Wraps `payload` in the framed format: header, payload, checksum.
pub(crate) fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame =
        Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len() + CHECKPOINT_CHECKSUM_LEN);
    frame.extend_from_slice(&CHECKPOINT_MAGIC);
    frame.extend_from_slice(&CHECKPOINT_FORMAT.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    let checksum = fnv1a64(&frame);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame
}

/// Validates the frame around `bytes` and returns the payload slice.
pub(crate) fn decode_frame(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < CHECKPOINT_HEADER_LEN + CHECKPOINT_CHECKSUM_LEN {
        return Err(CheckpointError::TooShort { len: bytes.len() });
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(CheckpointError::BadMagic { found });
    }
    let format = u32::from_le_bytes(
        bytes[8..12]
            .try_into()
            .expect("slice of length 4 converts to [u8; 4]"),
    );
    if format != CHECKPOINT_FORMAT {
        return Err(CheckpointError::UnsupportedFormat { found: format });
    }
    let declared = u64::from_le_bytes(
        bytes[12..20]
            .try_into()
            .expect("slice of length 8 converts to [u8; 8]"),
    );
    let after_header = (bytes.len() - CHECKPOINT_HEADER_LEN - CHECKPOINT_CHECKSUM_LEN) as u64;
    if declared > after_header {
        return Err(CheckpointError::Truncated {
            declared,
            available: after_header,
        });
    }
    if declared < after_header {
        return Err(CheckpointError::TrailingBytes {
            extra: after_header - declared,
        });
    }
    let checksum_at = bytes.len() - CHECKPOINT_CHECKSUM_LEN;
    let stored = u64::from_le_bytes(
        bytes[checksum_at..]
            .try_into()
            .expect("slice of length 8 converts to [u8; 8]"),
    );
    let computed = fnv1a64(&bytes[..checksum_at]);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    Ok(&bytes[CHECKPOINT_HEADER_LEN..checksum_at])
}

/// Serialises `doc`, frames it, and commits it to `path` atomically:
/// write `<path>.tmp` → `sync_all` → rename over `path`.
pub(crate) fn write_doc(
    path: &Path,
    doc: &CheckpointDoc,
) -> Result<CheckpointInfo, CheckpointError> {
    let payload = serde_json::to_string(doc).map_err(|error| CheckpointError::Invalid {
        message: error.to_string(),
    })?;
    let frame = encode_frame(payload.as_bytes());
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Io {
            message: format!("checkpoint path {} has no file name", path.display()),
        })?
        .to_owned();
    let mut tmp_name = file_name;
    tmp_name.push(".tmp");
    let tmp_path = path.with_file_name(tmp_name);
    let mut file = std::fs::File::create(&tmp_path).map_err(CheckpointError::io)?;
    file.write_all(&frame).map_err(CheckpointError::io)?;
    file.sync_all().map_err(CheckpointError::io)?;
    drop(file);
    // A crash here (the failpoint's spot) leaves a complete `.tmp` beside an
    // untouched `path`: the previous checkpoint still loads.
    crate::faultpoint::hit("checkpoint.write");
    std::fs::rename(&tmp_path, path).map_err(CheckpointError::io)?;
    Ok(CheckpointInfo {
        bytes: frame.len() as u64,
        version: doc.service_version,
    })
}

/// Reads, unframes, parses and validates the checkpoint at `path`.
pub(crate) fn read_doc(path: &Path) -> Result<CheckpointDoc, CheckpointError> {
    crate::faultpoint::hit("checkpoint.read");
    let bytes = std::fs::read(path).map_err(CheckpointError::io)?;
    let payload = decode_frame(&bytes)?;
    let text = std::str::from_utf8(payload).map_err(|error| CheckpointError::Invalid {
        message: format!("payload is not UTF-8: {error}"),
    })?;
    let doc: CheckpointDoc =
        serde_json::from_str(text).map_err(|error| CheckpointError::Invalid {
            message: error.to_string(),
        })?;
    doc.validate()?;
    Ok(doc)
}

/// Checkpoint write/restore latency at a given map shape — the durability
/// cost model `bench_report` tracks in `BENCH_large_map.json` next to the
/// publish and search figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointThroughputComparison {
    /// Neurons in the measured map.
    pub neurons: usize,
    /// Bits per weight vector.
    pub vector_len: usize,
    /// Size of one framed checkpoint of that map, in bytes.
    pub checkpoint_bytes: u64,
    /// Full checkpoint commits (serialise + frame + write + sync + rename)
    /// per second.
    pub write: MeasuredThroughput,
    /// Full restores ([`SomService::resume_from_checkpoint`], including
    /// service construction) per second.
    ///
    /// [`SomService::resume_from_checkpoint`]: crate::SomService::resume_from_checkpoint
    pub restore: MeasuredThroughput,
}

impl std::fmt::Display for CheckpointThroughputComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "checkpoint costs ({} neurons x {} bits, {} KiB framed)",
            self.neurons,
            self.vector_len,
            self.checkpoint_bytes / 1024
        )?;
        writeln!(
            f,
            "  write (serialise+sync+rename)    {:>12.1} checkpoints/s",
            self.write.patterns_per_second
        )?;
        write!(
            f,
            "  restore (validate+rebuild)       {:>12.1} resumes/s",
            self.restore.patterns_per_second
        )
    }
}

/// Measures checkpoint write and restore latency on a freshly trained map of
/// the given shape. `train_steps` signatures are fed first so the
/// checkpoint carries realistic (non-empty) label statistics;
/// `min_duration` is spent on **each** of the two measurements. The
/// checkpoint file lives in the OS temp directory and is removed before
/// returning.
///
/// # Panics
///
/// Panics if the temp directory is not writable (benchmark infrastructure,
/// not a recoverable serving condition).
pub fn compare_checkpoint_throughput(
    config: BSomConfig,
    train_steps: usize,
    min_duration: Duration,
    seed: u64,
) -> CheckpointThroughputComparison {
    use bsom_signature::BinaryVector;
    use bsom_som::ObjectLabel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let neurons = config.neurons;
    let vector_len = config.vector_len;
    let som = BSom::new(config, &mut rng);
    let (_service, mut trainer) = crate::SomService::train_while_serve(
        som,
        TrainSchedule::new(train_steps.max(1)),
        &[],
        EngineConfig::with_workers(1),
    );
    for step in 0..train_steps {
        let signature = BinaryVector::random(vector_len, &mut rng);
        trainer
            .feed(&signature, ObjectLabel::new(step % 8))
            .expect("generated signatures match the map's vector length");
    }
    trainer.publish();

    let path = std::env::temp_dir().join(format!(
        "bsom-checkpoint-bench-{}-{seed:x}.ckpt",
        std::process::id()
    ));
    let info = trainer
        .write_checkpoint(&path)
        .expect("the OS temp directory is writable");
    let write = measure(1, min_duration, || {
        trainer
            .write_checkpoint(&path)
            .expect("the OS temp directory is writable");
    });
    let restore = measure(1, min_duration, || {
        let restored = crate::SomService::resume_from_checkpoint(&path)
            .expect("a just-written checkpoint restores");
        std::hint::black_box(&restored);
    });
    let _ = std::fs::remove_file(&path);

    CheckpointThroughputComparison {
        neurons,
        vector_len,
        checkpoint_bytes: info.bytes,
        write,
        restore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_every_field_of_the_header_is_checked() {
        let payload = b"{\"hello\":1}";
        let frame = encode_frame(payload);
        assert_eq!(decode_frame(&frame).unwrap(), payload);

        // Too short.
        assert_eq!(
            decode_frame(&frame[..CHECKPOINT_HEADER_LEN]),
            Err(CheckpointError::TooShort {
                len: CHECKPOINT_HEADER_LEN
            })
        );
        // Bad magic.
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bad),
            Err(CheckpointError::BadMagic { .. })
        ));
        // Unsupported format.
        let mut bad = frame.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            decode_frame(&bad),
            Err(CheckpointError::UnsupportedFormat { .. })
        ));
        // Truncated payload (frame cut inside the payload).
        assert!(matches!(
            decode_frame(&frame[..frame.len() - CHECKPOINT_CHECKSUM_LEN - 1]),
            Err(CheckpointError::Truncated { .. })
        ));
        // Trailing bytes.
        let mut long = frame.clone();
        long.push(0);
        assert!(matches!(
            decode_frame(&long),
            Err(CheckpointError::TrailingBytes { extra: 1 })
        ));
        // Flipped payload bit.
        let mut flipped = frame.clone();
        flipped[CHECKPOINT_HEADER_LEN + 2] ^= 0x10;
        assert!(matches!(
            decode_frame(&flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            CheckpointError::Io {
                message: "x".into(),
            },
            CheckpointError::TooShort { len: 1 },
            CheckpointError::BadMagic { found: [0; 8] },
            CheckpointError::UnsupportedFormat { found: 9 },
            CheckpointError::Truncated {
                declared: 10,
                available: 2,
            },
            CheckpointError::TrailingBytes { extra: 3 },
            CheckpointError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            CheckpointError::Invalid {
                message: "y".into(),
            },
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
    }
}
