//! The train-while-serve service: one API over the shared packed layout.
//!
//! The paper's FPGA runs a single datapath that both learns and recognizes
//! on the same stored planes — there is no "training copy" of the weights to
//! export. [`SomService`] is the software equivalent (DESIGN.md
//! §"Train-while-serve and the shared packed layout"): it owns a versioned,
//! atomically-swappable [`SomSnapshot`] and hands out two kinds of handles
//! over it.
//!
//! * A [`Trainer`] feeds labelled signatures through the word-parallel bSOM
//!   trainer. Because [`BSom`] maintains its plane-sliced [`PackedLayer`]
//!   incrementally on every weight write, publishing a new serving snapshot
//!   is a copy-on-write clone of that layout — word rows untouched since the
//!   last publish are shared, not copied, so the cost is O(rows touched)
//!   even at 1000+ neurons — plus an atomic pointer swap; no re-pack, no
//!   pause (DESIGN.md §"Copy-on-write publication and the tournament WTA").
//!   Publication happens on epoch boundaries
//!   ([`Trainer::train_epochs`], [`Trainer::advance_epoch`]), on a step-count
//!   cadence ([`EngineConfig::publish_every_steps`]), or explicitly
//!   ([`Trainer::publish`]).
//! * Any number of [`Recognizer`]s classify against the snapshot they hold.
//!   A recognizer picks up a newly published snapshot at the start of its
//!   next batch with one atomic version check (the lock is touched only when
//!   the version actually moved), so classification latency is unaffected by
//!   an in-flight training epoch — the `concurrent_serve` bench measures
//!   exactly this.
//!
//! Snapshots are immutable once published (`Arc<SomSnapshot>`), so a batch
//! in flight can never observe a torn layer: it either runs entirely on
//! version `N` or entirely on version `N+1`.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use bsom_signature::{BinaryVector, RgbImage};
use bsom_som::{
    BSom, BatchWinner, LabelledSom, ObjectLabel, PackedLayer, Prediction, SelfOrganizingMap,
    SomError, TrainSchedule, Winner,
};
use bsom_vision::pipeline::SurveillancePipeline;

use crate::{EngineConfig, RecognizedObject, TrainReport};

/// Weights below this threshold are dropped from a neuron's decayed win
/// statistics — a win this faded can never influence a majority that any
/// fresh win participates in, and pruning keeps the per-neuron maps from
/// accumulating long-dead labels.
const DECAYED_WIN_FLOOR: f64 = 1e-9;

/// One neuron's online win statistics with optional exponential decay —
/// the [`Trainer`]'s generalisation of
/// [`NeuronLabelStats`](bsom_som::labeling::NeuronLabelStats).
///
/// Decay is applied lazily: each neuron remembers the feed step of its last
/// recorded win and scales its whole table by `decay^age` when the next win
/// arrives. Labels are compared only *within* a neuron, so the per-neuron
/// clocks need not line up across neurons.
#[derive(Debug, Clone, Default)]
struct DecayedLabelStats {
    /// Decayed win weight per label (a fresh win weighs 1.0).
    wins: BTreeMap<ObjectLabel, f64>,
    /// Feed-step clock of the most recent recorded win.
    last_step: u64,
}

impl DecayedLabelStats {
    /// Records one win of `label` at feed step `step`, first fading every
    /// stored win by `decay^(step - last_step)` when decay is configured.
    fn record_win(&mut self, label: ObjectLabel, step: u64, decay: Option<f64>) {
        if let Some(decay) = decay {
            let age = step.saturating_sub(self.last_step);
            if age > 0 {
                let scale = decay.powf(age as f64);
                self.wins.retain(|_, weight| {
                    *weight *= scale;
                    *weight > DECAYED_WIN_FLOOR
                });
            }
        }
        self.last_step = step;
        *self.wins.entry(label).or_insert(0.0) += 1.0;
    }

    /// The label with the greatest decayed weight, ties broken towards the
    /// smaller label id — the same rule as
    /// [`NeuronLabelStats::majority_label`](bsom_som::labeling::NeuronLabelStats::majority_label).
    fn majority_label(&self) -> Option<ObjectLabel> {
        self.wins
            .iter()
            .max_by(|(la, wa), (lb, wb)| {
                wa.partial_cmp(wb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(lb.cmp(la))
            })
            .map(|(label, _)| *label)
    }

    /// Forgets every recorded win (the manual windowed-relabelling hook).
    fn clear(&mut self) {
        self.wins.clear();
    }
}

/// A batch of signatures in shared ownership for the worker pool.
///
/// Callers never build this directly: every classify entry point takes
/// `impl Into<SignatureBatch>`, so a `&[BinaryVector]`, a `Vec`, or an
/// already-shared `Arc<Vec<BinaryVector>>` (the zero-copy path) all work.
pub struct SignatureBatch(Arc<Vec<BinaryVector>>);

impl SignatureBatch {
    /// Number of signatures in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<BinaryVector>> for SignatureBatch {
    fn from(signatures: Vec<BinaryVector>) -> Self {
        SignatureBatch(Arc::new(signatures))
    }
}

impl From<&[BinaryVector]> for SignatureBatch {
    fn from(signatures: &[BinaryVector]) -> Self {
        SignatureBatch(Arc::new(signatures.to_vec()))
    }
}

impl From<&Vec<BinaryVector>> for SignatureBatch {
    fn from(signatures: &Vec<BinaryVector>) -> Self {
        SignatureBatch(Arc::new(signatures.clone()))
    }
}

impl From<Arc<Vec<BinaryVector>>> for SignatureBatch {
    fn from(signatures: Arc<Vec<BinaryVector>>) -> Self {
        SignatureBatch(signatures)
    }
}

impl From<&Arc<Vec<BinaryVector>>> for SignatureBatch {
    fn from(signatures: &Arc<Vec<BinaryVector>>) -> Self {
        SignatureBatch(Arc::clone(signatures))
    }
}

/// One immutable, versioned serving snapshot: the packed competitive layer
/// plus the neuron labelling and rejection threshold in effect when it was
/// published.
#[derive(Debug)]
pub struct SomSnapshot {
    version: u64,
    layer: Arc<PackedLayer>,
    labels: Vec<Option<ObjectLabel>>,
    unknown_threshold: Option<f64>,
}

impl SomSnapshot {
    /// The snapshot's monotonically increasing version (the initial snapshot
    /// a service is constructed with is version 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The plane-sliced competitive layer this snapshot serves from.
    pub fn layer(&self) -> &PackedLayer {
        &self.layer
    }

    /// The label assigned to each neuron at publish time.
    pub fn neuron_labels(&self) -> &[Option<ObjectLabel>] {
        &self.labels
    }

    /// The unknown-rejection distance threshold, if any.
    pub fn unknown_threshold(&self) -> Option<f64> {
        self.unknown_threshold
    }

    /// Converts a raw winner into a verdict, applying the label table and
    /// the unknown threshold exactly like [`LabelledSom::classify`].
    pub(crate) fn verdict(&self, winner: Option<BatchWinner>) -> Prediction {
        let Some(winner) = winner else {
            return Prediction::Unknown; // wrong-length signature
        };
        let distance = winner.distance as f64;
        if let Some(threshold) = self.unknown_threshold {
            if distance > threshold {
                return Prediction::Unknown;
            }
        }
        match self.labels[winner.index] {
            Some(label) => Prediction::Known {
                label,
                neuron: winner.index,
                distance,
            },
            None => Prediction::Unknown,
        }
    }
}

/// A shard of winner-search work sent to the pool. The job carries the layer
/// it must search, so one pool serves every snapshot version concurrently.
struct Job {
    layer: Arc<PackedLayer>,
    signatures: Arc<Vec<BinaryVector>>,
    range: Range<usize>,
    reply: Sender<Shard>,
}

/// A completed shard: winners for `signatures[start..start + winners.len()]`.
struct Shard {
    start: usize,
    winners: Vec<Option<BatchWinner>>,
}

/// The fixed worker pool. Workers pull jobs off a shared queue; dropping the
/// pool closes the queue and joins every thread.
struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|worker_index| {
                let job_rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("bsom-service-{worker_index}"))
                    .spawn(move || worker_loop(&job_rx))
                    .expect("spawning a service worker thread")
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            handles,
        }
    }

    fn submit(&self, job: Job) {
        self.job_tx
            .as_ref()
            .expect("pool is alive while the service exists")
            .send(job)
            .expect("workers outlive the service");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        self.job_tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: drain the shared job queue, running the batched winner
/// search over each shard with a reusable distance buffer.
fn worker_loop(job_rx: &Mutex<Receiver<Job>>) {
    let mut distances: Vec<u32> = Vec::new();
    loop {
        // Hold the lock only while receiving so shards drain in parallel.
        let job = match job_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // a sibling worker panicked; shut down
        };
        let Ok(job) = job else {
            return; // queue closed: the service was dropped
        };
        distances.resize(job.layer.neuron_count(), 0);
        let winners = job.range.clone().map(|i| {
            job.layer
                .winner_with_buffer(&job.signatures[i], &mut distances)
                .ok()
        });
        let shard = Shard {
            start: job.range.start,
            winners: winners.collect(),
        };
        // The collector may have been dropped (e.g. a panicking caller);
        // losing the reply is then harmless.
        let _ = job.reply.send(shard);
    }
}

/// The state every handle shares: the latest published snapshot behind a
/// mutex, its version mirrored in an atomic so readers can detect "nothing
/// changed" without touching the lock, and the worker pool.
struct ServiceCore {
    latest: Mutex<Arc<SomSnapshot>>,
    version: AtomicU64,
    pool: WorkerPool,
    workers: usize,
}

impl ServiceCore {
    /// The latest published snapshot.
    fn snapshot(&self) -> Arc<SomSnapshot> {
        Arc::clone(&self.latest.lock().expect("snapshot lock poisoned"))
    }

    /// Swaps in a new snapshot and returns its version. The version counter
    /// is released only after the pointer swap, so a reader that observes
    /// the new version is guaranteed to read the new snapshot.
    fn publish(
        &self,
        layer: Arc<PackedLayer>,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
    ) -> u64 {
        let mut guard = self.latest.lock().expect("snapshot lock poisoned");
        let version = guard.version() + 1;
        *guard = Arc::new(SomSnapshot {
            version,
            layer,
            labels,
            unknown_threshold,
        });
        self.version.store(version, Ordering::Release);
        version
    }

    /// Sharded winner search + verdicts against one pinned snapshot.
    fn classify_on(&self, snapshot: &SomSnapshot, batch: &SignatureBatch) -> Vec<Prediction> {
        let total = batch.len();
        if total == 0 {
            return Vec::new();
        }
        let shard_len = total.div_ceil(self.workers);
        let (reply_tx, reply_rx) = mpsc::channel::<Shard>();
        let mut shards_sent = 0usize;
        let mut start = 0usize;
        while start < total {
            let end = (start + shard_len).min(total);
            self.pool.submit(Job {
                layer: Arc::clone(&snapshot.layer),
                signatures: Arc::clone(&batch.0),
                range: start..end,
                reply: reply_tx.clone(),
            });
            shards_sent += 1;
            start = end;
        }
        drop(reply_tx);

        let mut predictions: Vec<Prediction> = vec![Prediction::Unknown; total];
        for _ in 0..shards_sent {
            let shard = reply_rx
                .recv()
                .expect("every submitted shard sends exactly one reply");
            for (offset, winner) in shard.winners.into_iter().enumerate() {
                predictions[shard.start + offset] = snapshot.verdict(winner);
            }
        }
        predictions
    }
}

/// Runs a frame batch through the pipeline, classifies every observation's
/// signature in one call to `classify`, and reassembles per-frame results.
pub(crate) fn recognize_frames(
    pipeline: &mut SurveillancePipeline,
    frames: &[RgbImage],
    classify: impl FnOnce(Vec<BinaryVector>) -> Vec<Prediction>,
) -> Vec<Vec<RecognizedObject>> {
    let per_frame = pipeline.process_frames(frames);
    let signatures: Vec<BinaryVector> = per_frame
        .iter()
        .flatten()
        .map(|obs| obs.signature.clone())
        .collect();
    let mut predictions = classify(signatures).into_iter();
    per_frame
        .into_iter()
        .map(|observations| {
            observations
                .into_iter()
                .map(|observation| RecognizedObject {
                    observation,
                    prediction: predictions
                        .next()
                        .expect("one prediction per flattened observation"),
                })
                .collect()
        })
        .collect()
}

/// The train-while-serve facade: a versioned, atomically-swappable serving
/// snapshot plus the worker pool that searches it.
///
/// # Examples
///
/// ```rust
/// use bsom_engine::{EngineConfig, SomService};
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_som::SomError> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = BinaryVector::from_bits((0..64).map(|i| i < 32));
/// let b = BinaryVector::from_bits((0..64).map(|i| i >= 32));
/// let data = vec![(a.clone(), ObjectLabel::new(0)), (b.clone(), ObjectLabel::new(1))];
///
/// let som = BSom::new(BSomConfig::new(8, 64), &mut rng);
/// let (service, mut trainer) =
///     SomService::train_while_serve(som, TrainSchedule::new(100), &data, EngineConfig::default());
/// let mut recognizer = service.recognizer();
///
/// // The recognizer serves from snapshot v1 while training proceeds...
/// trainer.train_epochs(&data, 100, &mut rng)?; // publishes on each epoch boundary
///
/// // ...and picks up the newest published snapshot on its next batch.
/// let predictions = recognizer.classify_batch(&[a, b][..]);
/// assert_eq!(predictions[0].label(), Some(ObjectLabel::new(0)));
/// assert_eq!(predictions[1].label(), Some(ObjectLabel::new(1)));
/// # Ok(())
/// # }
/// ```
pub struct SomService {
    core: Arc<ServiceCore>,
}

impl std::fmt::Debug for SomService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.core.snapshot();
        f.debug_struct("SomService")
            .field("version", &snapshot.version())
            .field("neurons", &snapshot.layer().neuron_count())
            .field("vector_len", &snapshot.layer().vector_len())
            .field("workers", &self.core.workers)
            .finish()
    }
}

impl SomService {
    /// Serves a frozen, already-trained classifier: snapshot v1 is published
    /// at construction and never replaced (nothing holds a [`Trainer`]).
    pub fn serve(classifier: &LabelledSom<BSom>, config: EngineConfig) -> Self {
        Self::from_parts(
            classifier.map().packed_layer().clone(),
            classifier.neuron_labels().to_vec(),
            config.unknown_threshold.or(classifier.unknown_threshold()),
            config.workers,
        )
    }

    /// Builds a serve-only service from an already-packed layer plus
    /// per-neuron labels, e.g. weights exported from the FPGA BlockRAM after
    /// off-line training (paper §V-F).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the layer's neuron count.
    pub fn from_parts(
        layer: PackedLayer,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
        workers: usize,
    ) -> Self {
        assert_eq!(
            labels.len(),
            layer.neuron_count(),
            "one label slot per neuron"
        );
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let snapshot = Arc::new(SomSnapshot {
            version: 1,
            layer: Arc::new(layer),
            labels,
            unknown_threshold,
        });
        let core = Arc::new(ServiceCore {
            latest: Mutex::new(snapshot),
            version: AtomicU64::new(1),
            pool: WorkerPool::spawn(workers),
            workers,
        });
        SomService { core }
    }

    /// Opens the service for **online learning**: publishes snapshot v1 from
    /// the map as given (labelled by a win pass over `seed_data`, which may
    /// be empty for a cold start) and returns the [`Trainer`] that owns the
    /// map from here on.
    ///
    /// Recognizers created before or after training starts are equivalent:
    /// each serves whatever snapshot is newest at its next batch.
    pub fn train_while_serve(
        som: BSom,
        schedule: TrainSchedule,
        seed_data: &[(BinaryVector, ObjectLabel)],
        config: EngineConfig,
    ) -> (Self, Trainer) {
        let mut stats = vec![DecayedLabelStats::default(); som.neuron_count()];
        for (signature, label) in seed_data {
            if let Ok(winner) = som.winner(signature) {
                // Seed wins share feed-step 0: no decay separates them.
                stats[winner.index].record_win(*label, 0, config.label_decay);
            }
        }
        let labels = stats
            .iter()
            .map(DecayedLabelStats::majority_label)
            .collect();
        let service = Self::from_parts(
            som.packed_layer().clone(),
            labels,
            config.unknown_threshold,
            config.workers,
        );
        let trainer = Trainer {
            core: Arc::clone(&service.core),
            som,
            schedule,
            epochs_run: 0,
            steps_run: 0,
            steps_since_publish: 0,
            publish_every_steps: config.publish_every_steps,
            stats,
            label_decay: config.label_decay,
            unknown_threshold: config.unknown_threshold,
        };
        (service, trainer)
    }

    /// A new recognizer handle, pinned to the latest snapshot until its next
    /// refresh. Handles are independent: create one per serving thread.
    pub fn recognizer(&self) -> Recognizer {
        Recognizer {
            current: self.core.snapshot(),
            core: Arc::clone(&self.core),
        }
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<SomSnapshot> {
        self.core.snapshot()
    }

    /// Version of the latest published snapshot.
    pub fn version(&self) -> u64 {
        self.core.version.load(Ordering::Acquire)
    }

    /// Number of worker threads in the shared pool.
    pub fn worker_count(&self) -> usize {
        self.core.workers
    }

    /// Classifies a batch against one **pinned** snapshot (no refresh) —
    /// the frozen-serving path used by the legacy `RecognitionEngine`
    /// wrapper and by A/B comparisons across versions.
    pub fn classify_pinned(
        &self,
        snapshot: &SomSnapshot,
        signatures: impl Into<SignatureBatch>,
    ) -> Vec<Prediction> {
        self.core.classify_on(snapshot, &signatures.into())
    }
}

/// The training handle: owns the [`BSom`], feeds it labelled signatures, and
/// publishes serving snapshots. Exactly one trainer exists per
/// train-while-serve service.
///
/// Neuron labels are maintained **online**: every fed signature adds a win
/// for its label to the winning neuron's statistics (the same win-frequency
/// rule as [`LabelledSom::label`], accumulated as data streams instead of in
/// a separate pass), and each publish assigns every neuron its current
/// majority label. With [`EngineConfig::label_decay`] configured, each win's
/// weight fades exponentially with its age in feed steps, so under
/// appearance drift a neuron whose cluster changes identity relabels itself
/// as soon as fresh wins outweigh the faded history — no manual
/// [`reset_label_stats`](Trainer::reset_label_stats) required.
pub struct Trainer {
    core: Arc<ServiceCore>,
    som: BSom,
    schedule: TrainSchedule,
    epochs_run: usize,
    steps_run: u64,
    steps_since_publish: u64,
    publish_every_steps: Option<u64>,
    stats: Vec<DecayedLabelStats>,
    label_decay: Option<f64>,
    unknown_threshold: Option<f64>,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("epochs_run", &self.epochs_run)
            .field("steps_run", &self.steps_run)
            .field(
                "published_version",
                &self.core.version.load(Ordering::Acquire),
            )
            .finish()
    }
}

impl Trainer {
    /// The map in its current training state.
    pub fn som(&self) -> &BSom {
        &self.som
    }

    /// The schedule the training time follows.
    pub fn schedule(&self) -> &TrainSchedule {
        &self.schedule
    }

    /// Epochs of the schedule completed so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Training steps (pattern presentations) completed so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// One labelled training step at the schedule's current epoch: winner
    /// search on the shared packed layout, neighbourhood update, win-stat
    /// accumulation. Publishes automatically when the configured step-count
    /// cadence ([`EngineConfig::publish_every_steps`]) is reached.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length
    /// signature.
    pub fn feed(
        &mut self,
        signature: &BinaryVector,
        label: ObjectLabel,
    ) -> Result<Winner, SomError> {
        let winner = self
            .som
            .train_step(signature, self.epochs_run, &self.schedule)?;
        self.stats[winner.index].record_win(label, self.steps_run, self.label_decay);
        self.steps_run += 1;
        self.steps_since_publish += 1;
        if let Some(every) = self.publish_every_steps {
            if self.steps_since_publish >= every {
                self.publish();
            }
        }
        Ok(winner)
    }

    /// Advances the schedule to the next epoch and publishes — the epoch
    /// boundary for callers that stream through [`feed`](Self::feed) rather
    /// than training from a fixed dataset.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epochs_run += 1;
        self.publish()
    }

    /// Runs `epochs` full shuffled passes over labelled `data`, publishing a
    /// snapshot at every epoch boundary (each step also honours the
    /// configured step-count cadence, exactly like [`feed`](Self::feed)).
    /// The shuffle reorders from the identity each epoch, so a run split
    /// across calls is bit-identical to a one-shot run with the same RNG
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyTrainingSet`] for empty `data` and
    /// propagates [`SomError::InputLengthMismatch`] from mismatched
    /// signatures.
    pub fn train_epochs<R: rand::Rng + ?Sized>(
        &mut self,
        data: &[(BinaryVector, ObjectLabel)],
        epochs: usize,
        rng: &mut R,
    ) -> Result<TrainReport, SomError> {
        if data.is_empty() {
            return Err(SomError::EmptyTrainingSet);
        }
        let start = std::time::Instant::now();
        let steps_before = self.steps_run;
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..epochs {
            crate::train::fresh_shuffled_order(&mut order, rng);
            for &idx in &order {
                let (signature, label) = &data[idx];
                self.feed(signature, *label)?;
            }
            self.epochs_run += 1;
            self.publish();
        }
        let steps = self.steps_run - steps_before;
        let seconds = start.elapsed().as_secs_f64();
        Ok(TrainReport {
            epochs,
            steps,
            seconds,
            steps_per_second: steps as f64 / seconds.max(f64::MIN_POSITIVE),
        })
    }

    /// Publishes the current weights and labelling as a new serving
    /// snapshot and returns its version. Cheap: one copy-on-write clone of
    /// the incrementally-maintained packed layout (word rows untouched
    /// since the last publish stay shared) plus an atomic pointer swap —
    /// recognizers mid-batch are untouched and pick the new version up on
    /// their next batch.
    pub fn publish(&mut self) -> u64 {
        self.steps_since_publish = 0;
        let labels = self
            .stats
            .iter()
            .map(DecayedLabelStats::majority_label)
            .collect();
        self.core.publish(
            Arc::new(self.som.packed_layer().clone()),
            labels,
            self.unknown_threshold,
        )
    }

    /// Clears the accumulated win statistics. Useful for windowed labelling
    /// under drift when no [`EngineConfig::label_decay`] is configured:
    /// reset, replay a recent window through [`feed`](Self::feed), publish.
    /// (With decay configured the statistics fade on their own.)
    pub fn reset_label_stats(&mut self) {
        for stat in &mut self.stats {
            stat.clear();
        }
    }

    /// Gives the trained map back, consuming the trainer. The service keeps
    /// serving its last published snapshot.
    pub fn into_som(self) -> BSom {
        self.som
    }
}

/// A serving handle: classifies batches against the snapshot it holds and
/// picks up newly published snapshots lock-free (one atomic load) at the
/// start of each batch.
pub struct Recognizer {
    core: Arc<ServiceCore>,
    current: Arc<SomSnapshot>,
}

impl std::fmt::Debug for Recognizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recognizer")
            .field("version", &self.current.version())
            .field("neurons", &self.current.layer().neuron_count())
            .finish()
    }
}

impl Recognizer {
    /// The snapshot this recognizer currently serves from.
    pub fn snapshot(&self) -> &SomSnapshot {
        &self.current
    }

    /// Version of the snapshot this recognizer currently serves from.
    pub fn version(&self) -> u64 {
        self.current.version()
    }

    /// Picks up the latest published snapshot if it is newer than the held
    /// one. Returns `true` if the snapshot changed. The fast path (nothing
    /// published) is a single atomic load; the lock is taken only to clone
    /// the new `Arc`.
    pub fn refresh(&mut self) -> bool {
        if self.core.version.load(Ordering::Acquire) == self.current.version() {
            return false;
        }
        self.current = self.core.snapshot();
        true
    }

    /// Classifies a batch of signatures, sharding the winner search across
    /// the service's worker pool. Refreshes to the newest snapshot first;
    /// the whole batch then runs against that one snapshot. Results are in
    /// input order; wrong-length signatures yield [`Prediction::Unknown`].
    pub fn classify_batch(&mut self, signatures: impl Into<SignatureBatch>) -> Vec<Prediction> {
        self.refresh();
        self.core.classify_on(&self.current, &signatures.into())
    }

    /// Classifies one signature on the calling thread (no pool round-trip) —
    /// the low-latency single-query path. Refreshes first.
    pub fn classify(&mut self, signature: &BinaryVector) -> Prediction {
        self.refresh();
        let winner = self.current.layer().winner(signature).ok();
        self.current.verdict(winner)
    }

    /// Runs a batch of frames through a [`SurveillancePipeline`] and
    /// classifies every surviving tracked object in one sharded winner
    /// search against the (refreshed) current snapshot.
    pub fn process_frames(
        &mut self,
        pipeline: &mut SurveillancePipeline,
        frames: &[RgbImage],
    ) -> Vec<Vec<RecognizedObject>> {
        self.refresh();
        let core = Arc::clone(&self.core);
        let snapshot = Arc::clone(&self.current);
        recognize_frames(pipeline, frames, move |signatures| {
            core.classify_on(&snapshot, &SignatureBatch::from(signatures))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsom_som::BSomConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5E121CE)
    }

    fn labelled_patterns(r: &mut StdRng, n: usize, len: usize) -> Vec<(BinaryVector, ObjectLabel)> {
        (0..n)
            .map(|i| (BinaryVector::random(len, r), ObjectLabel::new(i % 3)))
            .collect()
    }

    #[test]
    fn serve_only_service_matches_the_scalar_classifier() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 6, 96);
        let mut som = BSom::new(BSomConfig::new(12, 96), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(40), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som, &data);
        let service = SomService::serve(&classifier, EngineConfig::with_workers(3));
        assert_eq!(service.version(), 1);
        let mut recognizer = service.recognizer();
        let batch: Vec<BinaryVector> = (0..40).map(|_| BinaryVector::random(96, &mut r)).collect();
        let out = recognizer.classify_batch(&batch);
        for (s, p) in batch.iter().zip(&out) {
            assert_eq!(*p, classifier.classify(s));
        }
        // Nothing publishes into a serve-only service.
        assert!(!recognizer.refresh());
    }

    #[test]
    fn train_epochs_publishes_on_every_epoch_boundary() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 5, 64);
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(10),
            &data,
            EngineConfig::with_workers(2),
        );
        assert_eq!(service.version(), 1);
        let report = trainer.train_epochs(&data, 4, &mut r).unwrap();
        assert_eq!(report.epochs, 4);
        assert_eq!(report.steps, 20);
        assert_eq!(trainer.epochs_run(), 4);
        assert_eq!(service.version(), 5, "v1 + one publish per epoch");
    }

    #[test]
    fn recognizer_picks_up_published_snapshots_and_pinned_one_does_not() {
        let mut r = rng();
        // Distinct labels per pattern: online win-frequency labelling then
        // converges to one dedicated neuron per identity.
        let data: Vec<(BinaryVector, ObjectLabel)> = (0..6)
            .map(|i| (BinaryVector::random(64, &mut r), ObjectLabel::new(i)))
            .collect();
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(50),
            &data,
            EngineConfig::with_workers(2),
        );
        let mut live = service.recognizer();
        let pinned = service.snapshot();
        assert_eq!(live.version(), 1);

        trainer.train_epochs(&data, 50, &mut r).unwrap();
        assert!(live.refresh());
        assert_eq!(live.version(), 51);
        assert_eq!(pinned.version(), 1, "held snapshots are immutable");

        // The refreshed recognizer serves the trained weights: every
        // training pattern is now an exact match of some neuron, and the
        // live path is bit-identical to a frozen classify on that snapshot.
        let signatures: Vec<BinaryVector> = data.iter().map(|(s, _)| s.clone()).collect();
        let out = live.classify_batch(&signatures);
        let frozen = service.classify_pinned(&service.snapshot(), &signatures);
        assert_eq!(out, frozen);
        // Training moved the weights: the served layer differs from v1's,
        // and training patterns are now strictly closer to the map.
        assert_ne!(live.snapshot().layer(), pinned.layer());
        for signature in &signatures {
            let before = pinned.layer().winner(signature).unwrap().distance;
            let after = live.snapshot().layer().winner(signature).unwrap().distance;
            assert!(after <= before, "training must not push a pattern away");
        }
    }

    #[test]
    fn feed_publishes_on_the_step_cadence() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 4, 64);
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(10),
            &[],
            EngineConfig::with_workers(1).with_publish_every_steps(3),
        );
        for (signature, label) in data.iter().cycle().take(7) {
            trainer.feed(signature, *label).unwrap();
        }
        // Publishes after steps 3 and 6 (7 steps total).
        assert_eq!(service.version(), 3);
        assert_eq!(trainer.steps_run(), 7);
    }

    #[test]
    fn advance_epoch_publishes_and_moves_the_schedule() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 4, 64);
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(10),
            &[],
            EngineConfig::with_workers(1),
        );
        for (signature, label) in &data {
            trainer.feed(signature, *label).unwrap();
        }
        assert_eq!(
            service.version(),
            1,
            "no cadence configured: no auto-publish"
        );
        let version = trainer.advance_epoch();
        assert_eq!(version, 2);
        assert_eq!(trainer.epochs_run(), 1);
        assert_eq!(service.version(), 2);
    }

    #[test]
    fn published_snapshot_layer_equals_a_fresh_pack() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 5, 70);
        let som = BSom::new(BSomConfig::new(6, 70), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(8),
            &data,
            EngineConfig::with_workers(1),
        );
        trainer.train_epochs(&data, 8, &mut r).unwrap();
        let snapshot = service.snapshot();
        assert_eq!(snapshot.layer(), &PackedLayer::pack(trainer.som()));
    }

    #[test]
    fn single_classify_agrees_with_the_batch_path() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 6, 96);
        let mut som = BSom::new(BSomConfig::new(10, 96), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(30), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som, &data);
        let service = SomService::serve(&classifier, EngineConfig::with_workers(2));
        let mut recognizer = service.recognizer();
        let probes: Vec<BinaryVector> = (0..10).map(|_| BinaryVector::random(96, &mut r)).collect();
        let batched = recognizer.classify_batch(&probes);
        for (probe, expected) in probes.iter().zip(&batched) {
            assert_eq!(recognizer.classify(probe), *expected);
        }
        // Wrong-length single queries degrade to Unknown like the batch path.
        assert_eq!(
            recognizer.classify(&BinaryVector::zeros(8)),
            Prediction::Unknown
        );
    }

    #[test]
    fn decayed_stats_relabel_under_drift_without_reset() {
        // One neuron, one signature, two "identities": the early phase wins
        // as label 0, then — much later on the step clock — a handful of
        // label-1 wins arrive. With a short half-life the faded label-0
        // weight loses the majority; without decay it never does.
        let mut r = rng();
        let signature = BinaryVector::random(64, &mut r);
        let run = |config: EngineConfig, r: &mut StdRng| {
            let som = BSom::new(BSomConfig::new(1, 64), r);
            let (service, mut trainer) =
                SomService::train_while_serve(som, TrainSchedule::new(1000), &[], config);
            for _ in 0..100 {
                trainer.feed(&signature, ObjectLabel::new(0)).unwrap();
            }
            for _ in 0..20 {
                trainer.feed(&signature, ObjectLabel::new(1)).unwrap();
            }
            trainer.publish();
            service.snapshot().neuron_labels()[0]
        };
        let decayed = run(
            EngineConfig::with_workers(1).with_label_half_life_steps(10),
            &mut r,
        );
        assert_eq!(
            decayed,
            Some(ObjectLabel::new(1)),
            "a 10-step half-life must fade the 100 stale label-0 wins"
        );
        let cumulative = run(EngineConfig::with_workers(1), &mut r);
        assert_eq!(
            cumulative,
            Some(ObjectLabel::new(0)),
            "without decay the cumulative majority stays with the old label"
        );
    }

    #[test]
    fn decayed_stats_tie_break_and_interleaving_match_the_cumulative_rule() {
        // Same-step wins never decay relative to each other, so equal counts
        // tie-break towards the smaller label id, like NeuronLabelStats.
        let mut stats = DecayedLabelStats::default();
        stats.record_win(ObjectLabel::new(3), 0, Some(0.5));
        stats.record_win(ObjectLabel::new(1), 0, Some(0.5));
        assert_eq!(stats.majority_label(), Some(ObjectLabel::new(1)));
        // A fresh win at a much later step dominates both faded entries.
        stats.record_win(ObjectLabel::new(7), 40, Some(0.5));
        assert_eq!(stats.majority_label(), Some(ObjectLabel::new(7)));
        // Long-dead entries are pruned, not kept at denormal weight.
        stats.record_win(ObjectLabel::new(7), 1000, Some(0.5));
        assert_eq!(stats.wins.len(), 1);
        // Without decay the weights are plain counts.
        let mut plain = DecayedLabelStats::default();
        plain.record_win(ObjectLabel::new(2), 0, None);
        plain.record_win(ObjectLabel::new(2), 900, None);
        plain.record_win(ObjectLabel::new(5), 901, None);
        assert_eq!(plain.majority_label(), Some(ObjectLabel::new(2)));
    }

    #[test]
    fn reset_label_stats_relabels_from_scratch() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 64), &mut r);
        let a = BinaryVector::random(64, &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(4),
            &[],
            EngineConfig::with_workers(1),
        );
        trainer.feed(&a, ObjectLabel::new(0)).unwrap();
        trainer.publish();
        assert!(service
            .snapshot()
            .neuron_labels()
            .iter()
            .any(|l| l.is_some()));
        trainer.reset_label_stats();
        trainer.publish();
        assert!(service
            .snapshot()
            .neuron_labels()
            .iter()
            .all(|l| l.is_none()));
    }
}
