//! The train-while-serve service: one API over the shared packed layout.
//!
//! The paper's FPGA runs a single datapath that both learns and recognizes
//! on the same stored planes — there is no "training copy" of the weights to
//! export. [`SomService`] is the software equivalent (DESIGN.md
//! §"Train-while-serve and the shared packed layout"): it owns a versioned,
//! atomically-swappable [`SomSnapshot`] and hands out two kinds of handles
//! over it.
//!
//! * A [`Trainer`] feeds labelled signatures through the word-parallel bSOM
//!   trainer. Because [`BSom`] maintains its plane-sliced [`PackedLayer`]
//!   incrementally on every weight write, publishing a new serving snapshot
//!   is a copy-on-write clone of that layout — word rows untouched since the
//!   last publish are shared, not copied, so the cost is O(rows touched)
//!   even at 1000+ neurons — plus an atomic pointer swap; no re-pack, no
//!   pause (DESIGN.md §"Copy-on-write publication and the tournament WTA").
//!   Publication happens on epoch boundaries
//!   ([`Trainer::train_epochs`], [`Trainer::advance_epoch`]), on a step-count
//!   cadence ([`EngineConfig::publish_every_steps`]), or explicitly
//!   ([`Trainer::publish`]).
//! * Any number of [`Recognizer`]s classify against the snapshot they hold.
//!   A recognizer picks up a newly published snapshot at the start of its
//!   next batch with one atomic version check (the lock is touched only when
//!   the version actually moved), so classification latency is unaffected by
//!   an in-flight training epoch — the `concurrent_serve` bench measures
//!   exactly this.
//!
//! Snapshots are immutable once published (`Arc<SomSnapshot>`), so a batch
//! in flight can never observe a torn layer: it either runs entirely on
//! version `N` or entirely on version `N+1`.

use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bsom_signature::{BinaryVector, RgbImage, TriStateVector};
use bsom_som::{
    BSom, BatchWinner, LabelledSom, ObjectLabel, PackedLayer, Prediction, SelfOrganizingMap,
    SomError, TrainSchedule, Winner,
};
use bsom_vision::pipeline::SurveillancePipeline;

use crate::checkpoint::{self, CheckpointDoc, CheckpointError, CheckpointInfo, NeuronStatsDoc};
use crate::{EngineConfig, EngineError, RecognizedObject, TrainReport};

/// Locks a mutex, recovering the data from a poisoned lock.
///
/// Every mutex in this module protects state that is consistent at every
/// instant a panic can unwind through it (snapshot publishes build the new
/// `Arc` *before* swapping; the job receiver is only ever `recv`'d from), so
/// a poisoned lock carries no torn data — the last good value is still
/// there. Recovering keeps the service serving after an injected or real
/// panic instead of cascading `PoisonError` panics through every reader.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload for [`ServiceHealth::last_panic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "panic payload was not a string".to_string()
    }
}

/// Resolves [`EngineConfig::workers`]: 0 means one worker per available
/// hardware thread.
pub(crate) fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// Resolves [`EngineConfig::queue_capacity`]: `None` means four queued jobs
/// per worker, floored at 16.
pub(crate) fn resolve_queue_capacity(queue_capacity: Option<usize>, workers: usize) -> usize {
    queue_capacity.unwrap_or_else(|| (workers * 4).max(16))
}

/// Weights below this threshold are dropped from a neuron's decayed win
/// statistics — a win this faded can never influence a majority that any
/// fresh win participates in, and pruning keeps the per-neuron maps from
/// accumulating long-dead labels.
const DECAYED_WIN_FLOOR: f64 = 1e-9;

/// One neuron's online win statistics with optional exponential decay —
/// the [`Trainer`]'s generalisation of
/// [`NeuronLabelStats`](bsom_som::labeling::NeuronLabelStats).
///
/// Decay is applied lazily: each neuron remembers the feed step of its last
/// recorded win and scales its whole table by `decay^age` when the next win
/// arrives. Labels are compared only *within* a neuron, so the per-neuron
/// clocks need not line up across neurons.
#[derive(Debug, Clone, Default)]
struct DecayedLabelStats {
    /// Decayed win weight per label (a fresh win weighs 1.0).
    wins: BTreeMap<ObjectLabel, f64>,
    /// Feed-step clock of the most recent recorded win.
    last_step: u64,
}

impl DecayedLabelStats {
    /// Records one win of `label` at feed step `step`, first fading every
    /// stored win by `decay^(step - last_step)` when decay is configured.
    fn record_win(&mut self, label: ObjectLabel, step: u64, decay: Option<f64>) {
        if let Some(decay) = decay {
            let age = step.saturating_sub(self.last_step);
            if age > 0 {
                let scale = decay.powf(age as f64);
                self.wins.retain(|_, weight| {
                    *weight *= scale;
                    *weight > DECAYED_WIN_FLOOR
                });
            }
        }
        self.last_step = step;
        *self.wins.entry(label).or_insert(0.0) += 1.0;
    }

    /// The label with the greatest decayed weight, ties broken towards the
    /// smaller label id — the same rule as
    /// [`NeuronLabelStats::majority_label`](bsom_som::labeling::NeuronLabelStats::majority_label).
    fn majority_label(&self) -> Option<ObjectLabel> {
        self.wins
            .iter()
            .max_by(|(la, wa), (lb, wb)| {
                wa.partial_cmp(wb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(lb.cmp(la))
            })
            .map(|(label, _)| *label)
    }

    /// Forgets every recorded win (the manual windowed-relabelling hook).
    fn clear(&mut self) {
        self.wins.clear();
    }
}

/// A batch of signatures in shared ownership for the worker pool.
///
/// Callers never build this directly: every classify entry point takes
/// `impl Into<SignatureBatch>`, so a `&[BinaryVector]`, a `Vec`, or an
/// already-shared `Arc<Vec<BinaryVector>>` (the zero-copy path) all work.
pub struct SignatureBatch(Arc<Vec<BinaryVector>>);

impl SignatureBatch {
    /// Number of signatures in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<BinaryVector>> for SignatureBatch {
    fn from(signatures: Vec<BinaryVector>) -> Self {
        SignatureBatch(Arc::new(signatures))
    }
}

impl From<&[BinaryVector]> for SignatureBatch {
    fn from(signatures: &[BinaryVector]) -> Self {
        SignatureBatch(Arc::new(signatures.to_vec()))
    }
}

impl From<&Vec<BinaryVector>> for SignatureBatch {
    fn from(signatures: &Vec<BinaryVector>) -> Self {
        SignatureBatch(Arc::new(signatures.clone()))
    }
}

impl From<Arc<Vec<BinaryVector>>> for SignatureBatch {
    fn from(signatures: Arc<Vec<BinaryVector>>) -> Self {
        SignatureBatch(signatures)
    }
}

impl From<&Arc<Vec<BinaryVector>>> for SignatureBatch {
    fn from(signatures: &Arc<Vec<BinaryVector>>) -> Self {
        SignatureBatch(Arc::clone(signatures))
    }
}

/// One immutable, versioned serving snapshot: the packed competitive layer
/// plus the neuron labelling and rejection threshold in effect when it was
/// published.
#[derive(Debug)]
pub struct SomSnapshot {
    version: u64,
    layer: Arc<PackedLayer>,
    labels: Vec<Option<ObjectLabel>>,
    unknown_threshold: Option<f64>,
}

impl SomSnapshot {
    /// The snapshot's monotonically increasing version (the initial snapshot
    /// a service is constructed with is version 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The plane-sliced competitive layer this snapshot serves from.
    pub fn layer(&self) -> &PackedLayer {
        &self.layer
    }

    /// The label assigned to each neuron at publish time.
    pub fn neuron_labels(&self) -> &[Option<ObjectLabel>] {
        &self.labels
    }

    /// The unknown-rejection distance threshold, if any.
    pub fn unknown_threshold(&self) -> Option<f64> {
        self.unknown_threshold
    }

    /// Converts a raw winner into a verdict, applying the label table and
    /// the unknown threshold exactly like [`LabelledSom::classify`].
    pub(crate) fn verdict(&self, winner: Option<BatchWinner>) -> Prediction {
        let Some(winner) = winner else {
            return Prediction::Unknown; // wrong-length signature
        };
        let distance = winner.distance as f64;
        if let Some(threshold) = self.unknown_threshold {
            if distance > threshold {
                return Prediction::Unknown;
            }
        }
        match self.labels[winner.index] {
            Some(label) => Prediction::Known {
                label,
                neuron: winner.index,
                distance,
            },
            None => Prediction::Unknown,
        }
    }
}

/// A shard of winner-search work sent to the pool. The job carries the layer
/// it must search, so one pool serves every snapshot version concurrently.
struct Job {
    layer: Arc<PackedLayer>,
    signatures: Arc<Vec<BinaryVector>>,
    range: Range<usize>,
    reply: Sender<Shard>,
}

/// A shard reply. `winners` is `None` when the worker's job panicked — the
/// collector then recomputes that range inline (the search is deterministic,
/// so the inline result is bit-identical to what the worker would have sent)
/// and the panic costs latency, never correctness.
struct Shard {
    range: Range<usize>,
    winners: Option<Vec<Option<BatchWinner>>>,
}

/// Base delay before respawning a panicked worker; doubles per consecutive
/// panic up to [`RESPAWN_MAX_DELAY`], so a poisoned input that kills every
/// worker that touches it cannot turn the supervisor into a spawn loop.
const RESPAWN_BASE_DELAY: Duration = Duration::from_millis(2);
/// Cap on the exponential respawn backoff.
const RESPAWN_MAX_DELAY: Duration = Duration::from_millis(250);
/// A panic this long after the previous one starts the backoff ladder over.
const RESPAWN_QUIET_PERIOD: Duration = Duration::from_secs(1);

/// How a worker thread left its receive loop.
enum WorkerExit {
    /// The job queue closed: the service is shutting down.
    QueueClosed,
    /// A job panicked. The worker reported the shard as failed and exits;
    /// the supervisor respawns a fresh thread (let-it-crash: no state from
    /// the panicked thread is reused).
    Panicked,
}

/// Supervisor mailbox: worker exits and the shutdown sentinel.
enum ExitEvent {
    WorkerPanicked,
    Shutdown,
}

/// State shared between the pool handle, its workers, and the supervisor.
struct PoolShared {
    /// The bounded job queue's receiving half. Workers hold the lock only
    /// while `recv`ing, so shards drain in parallel.
    job_rx: Mutex<Receiver<Job>>,
    /// Jobs submitted and not yet picked up by a worker.
    queue_depth: AtomicUsize,
    /// Worker threads currently in their receive loop.
    workers_alive: AtomicUsize,
    /// Total worker threads ever spawned (names respawns uniquely).
    spawned_total: AtomicUsize,
    /// Jobs that panicked ([`ServiceHealth::worker_panics`]).
    panics: AtomicU64,
    /// Workers respawned by the supervisor ([`ServiceHealth::worker_respawns`]).
    respawns: AtomicU64,
    /// Message of the most recent worker panic.
    last_panic: Mutex<Option<String>>,
    /// Join handles of every live (or not-yet-joined) worker thread. The
    /// supervisor pushes respawned handles; only pool drop drains it, after
    /// the supervisor has been joined.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// The supervised worker pool: a fixed target of worker threads over one
/// bounded job queue, plus a supervisor thread that respawns any worker
/// whose job panicked. Dropping the pool closes the queue, stops the
/// supervisor, and joins every thread.
///
/// `pub(crate)` because every [`Job`] carries the `Arc<PackedLayer>` it must
/// search, one pool can serve any number of services — the multi-tenant
/// [`MapRegistry`](crate::registry::MapRegistry) shares a single pool across
/// all of its tenants' services.
pub(crate) struct WorkerPool {
    job_tx: Option<SyncSender<Job>>,
    exit_tx: Option<Sender<ExitEvent>>,
    supervisor: Option<JoinHandle<()>>,
    shared: Arc<PoolShared>,
    queue_capacity: usize,
}

impl WorkerPool {
    pub(crate) fn spawn(workers: usize, queue_capacity: usize) -> Self {
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(queue_capacity);
        let (exit_tx, exit_rx) = mpsc::channel::<ExitEvent>();
        let shared = Arc::new(PoolShared {
            job_rx: Mutex::new(job_rx),
            queue_depth: AtomicUsize::new(0),
            workers_alive: AtomicUsize::new(0),
            spawned_total: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            last_panic: Mutex::new(None),
            handles: Mutex::new(Vec::with_capacity(workers)),
        });
        for _ in 0..workers {
            let handle = spawn_worker(&shared, exit_tx.clone());
            lock_recovering(&shared.handles).push(handle);
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            let exit_tx = exit_tx.clone();
            std::thread::Builder::new()
                .name("bsom-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared, &exit_rx, &exit_tx))
                .expect("spawning the supervisor thread")
        };
        WorkerPool {
            job_tx: Some(job_tx),
            exit_tx: Some(exit_tx),
            supervisor: Some(supervisor),
            shared,
            queue_capacity,
        }
    }

    /// The sending half; present from construction until drop.
    fn job_tx(&self) -> &SyncSender<Job> {
        self.job_tx
            .as_ref()
            .expect("job_tx is taken only in WorkerPool::drop")
    }

    /// Blocking submit: waits for queue space (backpressure). Fails only
    /// mid-shutdown, when the receiver is already gone.
    fn submit(&self, job: Job) -> Result<(), EngineError> {
        self.shared.queue_depth.fetch_add(1, Ordering::SeqCst);
        match self.job_tx().send(job) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                Err(EngineError::PoolShutDown)
            }
        }
    }

    /// The pool's supervision counters as a [`ServiceHealth`], reported
    /// against the given configured worker count. Shared by
    /// [`ServiceCore::health`] and the registry's aggregate health view.
    pub(crate) fn health_with(&self, workers_configured: usize) -> ServiceHealth {
        ServiceHealth {
            workers_configured,
            workers_alive: self.shared.workers_alive.load(Ordering::SeqCst),
            queue_depth: self.shared.queue_depth.load(Ordering::SeqCst),
            queue_capacity: self.queue_capacity,
            worker_panics: self.shared.panics.load(Ordering::SeqCst),
            worker_respawns: self.shared.respawns.load(Ordering::SeqCst),
            last_panic: lock_recovering(&self.shared.last_panic).clone(),
        }
    }

    /// Non-blocking submit: a full queue is the saturation signal —
    /// [`EngineError::Overloaded`] — instead of unbounded queue growth.
    fn try_submit(&self, job: Job) -> Result<(), EngineError> {
        self.shared.queue_depth.fetch_add(1, Ordering::SeqCst);
        match self.job_tx().try_send(job) {
            Ok(()) => Ok(()),
            Err(error) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                Err(match error {
                    TrySendError::Full(_) => EngineError::Overloaded {
                        queue_capacity: self.queue_capacity,
                        queue_depth: self.shared.queue_depth.load(Ordering::SeqCst),
                    },
                    TrySendError::Disconnected(_) => EngineError::PoolShutDown,
                })
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channel ends every worker's receive loop; the
        // sentinel (not channel closure — respawned workers hold clones of
        // the exit sender) ends the supervisor's.
        self.job_tx.take();
        if let Some(exit_tx) = self.exit_tx.take() {
            let _ = exit_tx.send(ExitEvent::Shutdown);
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Only after the supervisor is gone can no new handles appear.
        let handles: Vec<JoinHandle<()>> =
            lock_recovering(&self.shared.handles).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Spawns one worker thread and accounts for it in the shared state.
fn spawn_worker(shared: &Arc<PoolShared>, exit_tx: Sender<ExitEvent>) -> JoinHandle<()> {
    let index = shared.spawned_total.fetch_add(1, Ordering::SeqCst);
    shared.workers_alive.fetch_add(1, Ordering::SeqCst);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("bsom-service-{index}"))
        .spawn(move || {
            let exit = worker_loop(&shared);
            shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
            if let WorkerExit::Panicked = exit {
                // The supervisor may itself be gone mid-shutdown; the
                // un-respawned worker is then irrelevant.
                let _ = exit_tx.send(ExitEvent::WorkerPanicked);
            }
        })
        .expect("spawning a service worker thread")
}

/// Worker body: drain the shared job queue, running the batched winner
/// search over each shard with a reusable distance buffer. Each job runs
/// inside `catch_unwind`; a panicking job reports a failed shard (so the
/// collector never hangs) and the thread exits for the supervisor to
/// replace — no state of the panicked thread survives into the respawn.
fn worker_loop(shared: &PoolShared) -> WorkerExit {
    let mut distances: Vec<u32> = Vec::new();
    loop {
        // Hold the lock only while receiving so shards drain in parallel.
        let job = lock_recovering(&shared.job_rx).recv();
        let Ok(job) = job else {
            return WorkerExit::QueueClosed; // queue closed: service dropped
        };
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::faultpoint::hit("worker.job");
            distances.resize(job.layer.neuron_count(), 0);
            job.range
                .clone()
                .map(|i| {
                    job.layer
                        .winner_with_buffer(&job.signatures[i], &mut distances)
                        .ok()
                })
                .collect::<Vec<Option<BatchWinner>>>()
        }));
        match outcome {
            Ok(winners) => {
                // The collector may have been dropped (e.g. a panicking
                // caller); losing the reply is then harmless.
                let _ = job.reply.send(Shard {
                    range: job.range,
                    winners: Some(winners),
                });
            }
            Err(payload) => {
                shared.panics.fetch_add(1, Ordering::SeqCst);
                *lock_recovering(&shared.last_panic) = Some(panic_message(payload.as_ref()));
                let _ = job.reply.send(Shard {
                    range: job.range,
                    winners: None,
                });
                return WorkerExit::Panicked;
            }
        }
    }
}

/// Supervisor body: respawn panicked workers with a capped exponential
/// backoff until the shutdown sentinel arrives.
fn supervisor_loop(
    shared: &Arc<PoolShared>,
    exit_rx: &Receiver<ExitEvent>,
    exit_tx: &Sender<ExitEvent>,
) {
    let mut consecutive_panics: u32 = 0;
    let mut last_panic_at: Option<Instant> = None;
    while let Ok(event) = exit_rx.recv() {
        match event {
            ExitEvent::Shutdown => return,
            ExitEvent::WorkerPanicked => {
                if let Some(at) = last_panic_at {
                    if at.elapsed() >= RESPAWN_QUIET_PERIOD {
                        consecutive_panics = 0;
                    }
                }
                let delay = RESPAWN_BASE_DELAY
                    .saturating_mul(1u32 << consecutive_panics.min(7))
                    .min(RESPAWN_MAX_DELAY);
                std::thread::sleep(delay);
                consecutive_panics = consecutive_panics.saturating_add(1);
                last_panic_at = Some(Instant::now());
                shared.respawns.fetch_add(1, Ordering::SeqCst);
                let handle = spawn_worker(shared, exit_tx.clone());
                lock_recovering(&shared.handles).push(handle);
            }
        }
    }
}

/// A point-in-time view of the service's supervision state
/// ([`SomService::health`]): how many workers are alive versus configured,
/// how busy the bounded job queue is, and the panic/respawn history.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceHealth {
    /// Worker threads the service was configured with.
    pub workers_configured: usize,
    /// Worker threads currently alive. Dips below `workers_configured` only
    /// in the window between a worker panic and its respawn.
    pub workers_alive: usize,
    /// Jobs submitted to the bounded queue and not yet picked up.
    pub queue_depth: usize,
    /// Capacity of the bounded job queue
    /// ([`EngineConfig::queue_capacity`](crate::EngineConfig::queue_capacity)).
    pub queue_capacity: usize,
    /// Total worker jobs that panicked since construction.
    pub worker_panics: u64,
    /// Total workers the supervisor respawned since construction.
    pub worker_respawns: u64,
    /// Message of the most recent worker panic, if any.
    pub last_panic: Option<String>,
}

/// Admission policy for one batch (DESIGN.md §"Fault model and recovery"):
/// block on a full queue (backpressure) or shed the batch with
/// [`EngineError::Overloaded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    Block,
    Shed,
}

/// The state every handle shares: the latest published snapshot behind a
/// mutex, its version mirrored in an atomic so readers can detect "nothing
/// changed" without touching the lock, and the supervised worker pool.
struct ServiceCore {
    latest: Mutex<Arc<SomSnapshot>>,
    version: AtomicU64,
    /// Shared (`Arc`) so many services — the registry's tenants — can run
    /// over one supervised pool; a standalone service simply holds the only
    /// reference.
    pool: Arc<WorkerPool>,
    workers: usize,
}

impl ServiceCore {
    /// The latest published snapshot. Recovers from a poisoned lock: a
    /// publish panics (if ever) strictly *before* replacing the stored
    /// `Arc`, so the value behind a poisoned lock is always the last
    /// fully-published snapshot.
    fn snapshot(&self) -> Arc<SomSnapshot> {
        Arc::clone(&lock_recovering(&self.latest))
    }

    /// Swaps in a new snapshot and returns its version. The version counter
    /// is released only after the pointer swap, so a reader that observes
    /// the new version is guaranteed to read the new snapshot. The new
    /// `Arc` is fully constructed before the stored one is replaced, so an
    /// unwind while the lock is held (the `service.publish` failpoint sits
    /// exactly there) leaves the previous snapshot served, never a torn one.
    fn publish(
        &self,
        layer: Arc<PackedLayer>,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
    ) -> u64 {
        let mut guard = lock_recovering(&self.latest);
        crate::faultpoint::hit("service.publish");
        let version = guard.version() + 1;
        *guard = Arc::new(SomSnapshot {
            version,
            layer,
            labels,
            unknown_threshold,
        });
        self.version.store(version, Ordering::Release);
        version
    }

    /// The current supervision/queue counters.
    fn health(&self) -> ServiceHealth {
        self.pool.health_with(self.workers)
    }

    /// `(queue_depth, queue_capacity)` from atomics only — no lock, no
    /// `last_panic` clone — cheap enough for a scheduler to sample on every
    /// dispatch decision.
    fn queue_pressure(&self) -> (usize, usize) {
        (
            self.pool.shared.queue_depth.load(Ordering::SeqCst),
            self.pool.queue_capacity,
        )
    }

    /// Computes verdicts for `range` on the calling thread — the fallback
    /// when a shard's worker panicked or its reply was lost. The winner
    /// search is deterministic, so this is bit-identical to the pool path.
    fn classify_range_inline(
        &self,
        snapshot: &SomSnapshot,
        batch: &SignatureBatch,
        range: Range<usize>,
        predictions: &mut [Prediction],
    ) {
        let mut distances = vec![0u32; snapshot.layer.neuron_count()];
        for i in range {
            let winner = snapshot
                .layer
                .winner_with_buffer(&batch.0[i], &mut distances)
                .ok();
            predictions[i] = snapshot.verdict(winner);
        }
    }

    /// Sharded winner search + verdicts against one pinned snapshot.
    /// Infallible: shard failures (a panicked worker, a lost reply, even a
    /// shutting-down pool) degrade to inline computation on the calling
    /// thread with bit-identical results.
    fn classify_on(&self, snapshot: &SomSnapshot, batch: &SignatureBatch) -> Vec<Prediction> {
        self.classify_with_admission(snapshot, batch, Admission::Block)
            .unwrap_or_else(|_| unreachable!("blocking admission never sheds a batch"))
    }

    /// [`classify_on`](Self::classify_on) with an explicit admission policy.
    ///
    /// Under [`Admission::Shed`], a full job queue rejects the whole batch
    /// with [`EngineError::Overloaded`]; shards submitted before the full
    /// one still run (workers cannot be recalled) but their replies go to a
    /// receiver this call abandons. Under [`Admission::Block`] the call
    /// never errors: queue-full waits, and a shutdown race degrades to
    /// inline computation.
    fn classify_with_admission(
        &self,
        snapshot: &SomSnapshot,
        batch: &SignatureBatch,
        admission: Admission,
    ) -> Result<Vec<Prediction>, EngineError> {
        let total = batch.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let shard_len = total.div_ceil(self.workers);
        let (reply_tx, reply_rx) = mpsc::channel::<Shard>();
        // Ranges submitted to the pool whose replies are still owed.
        let mut outstanding: Vec<Range<usize>> = Vec::new();
        // Ranges the pool never accepted; computed inline below.
        let mut inline: Vec<Range<usize>> = Vec::new();
        let mut start = 0usize;
        while start < total {
            let end = (start + shard_len).min(total);
            let job = Job {
                layer: Arc::clone(&snapshot.layer),
                signatures: Arc::clone(&batch.0),
                range: start..end,
                reply: reply_tx.clone(),
            };
            match admission {
                Admission::Block => match self.pool.submit(job) {
                    Ok(()) => outstanding.push(start..end),
                    // Mid-shutdown: fall back to the calling thread.
                    Err(_) => inline.push(start..end),
                },
                Admission::Shed => match self.pool.try_submit(job) {
                    Ok(()) => outstanding.push(start..end),
                    Err(error) => return Err(error),
                },
            }
            start = end;
        }
        drop(reply_tx);

        let mut predictions: Vec<Prediction> = vec![Prediction::Unknown; total];
        while !outstanding.is_empty() {
            let Ok(shard) = reply_rx.recv() else {
                // Every remaining reply sender is gone without replying —
                // a worker died harder than the panic handler. Recompute.
                inline.append(&mut outstanding);
                break;
            };
            outstanding.retain(|range| *range != shard.range);
            match shard.winners {
                Some(winners) => {
                    for (offset, winner) in winners.into_iter().enumerate() {
                        predictions[shard.range.start + offset] = snapshot.verdict(winner);
                    }
                }
                // The worker running this shard panicked: its job already
                // counted in the health stats; the shard is re-run inline.
                None => inline.push(shard.range),
            }
        }
        for range in inline {
            self.classify_range_inline(snapshot, batch, range, &mut predictions);
        }
        Ok(predictions)
    }
}

/// Runs a frame batch through the pipeline, classifies every observation's
/// signature in one call to `classify`, and reassembles per-frame results.
pub(crate) fn recognize_frames(
    pipeline: &mut SurveillancePipeline,
    frames: &[RgbImage],
    classify: impl FnOnce(Vec<BinaryVector>) -> Vec<Prediction>,
) -> Vec<Vec<RecognizedObject>> {
    let per_frame = pipeline.process_frames(frames);
    let signatures: Vec<BinaryVector> = per_frame
        .iter()
        .flatten()
        .map(|obs| obs.signature.clone())
        .collect();
    let mut predictions = classify(signatures).into_iter();
    per_frame
        .into_iter()
        .map(|observations| {
            observations
                .into_iter()
                .map(|observation| RecognizedObject {
                    observation,
                    prediction: predictions
                        .next()
                        .expect("one prediction per flattened observation"),
                })
                .collect()
        })
        .collect()
}

/// The train-while-serve facade: a versioned, atomically-swappable serving
/// snapshot plus the worker pool that searches it.
///
/// # Examples
///
/// ```rust
/// use bsom_engine::{EngineConfig, SomService};
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_som::SomError> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = BinaryVector::from_bits((0..64).map(|i| i < 32));
/// let b = BinaryVector::from_bits((0..64).map(|i| i >= 32));
/// let data = vec![(a.clone(), ObjectLabel::new(0)), (b.clone(), ObjectLabel::new(1))];
///
/// let som = BSom::new(BSomConfig::new(8, 64), &mut rng);
/// let (service, mut trainer) =
///     SomService::train_while_serve(som, TrainSchedule::new(100), &data, EngineConfig::default());
/// let mut recognizer = service.recognizer();
///
/// // The recognizer serves from snapshot v1 while training proceeds...
/// trainer.train_epochs(&data, 100, &mut rng)?; // publishes on each epoch boundary
///
/// // ...and picks up the newest published snapshot on its next batch.
/// let predictions = recognizer.classify_batch(&[a, b][..]);
/// assert_eq!(predictions[0].label(), Some(ObjectLabel::new(0)));
/// assert_eq!(predictions[1].label(), Some(ObjectLabel::new(1)));
/// # Ok(())
/// # }
/// ```
pub struct SomService {
    core: Arc<ServiceCore>,
}

impl std::fmt::Debug for SomService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.core.snapshot();
        f.debug_struct("SomService")
            .field("version", &snapshot.version())
            .field("neurons", &snapshot.layer().neuron_count())
            .field("vector_len", &snapshot.layer().vector_len())
            .field("workers", &self.core.workers)
            .finish()
    }
}

impl SomService {
    /// Serves a frozen, already-trained classifier: snapshot v1 is published
    /// at construction and never replaced (nothing holds a [`Trainer`]).
    pub fn serve(classifier: &LabelledSom<BSom>, config: EngineConfig) -> Self {
        Self::build(
            classifier.map().packed_layer().clone(),
            classifier.neuron_labels().to_vec(),
            config.unknown_threshold.or(classifier.unknown_threshold()),
            config.workers,
            config.queue_capacity,
            1,
        )
    }

    /// Builds a serve-only service from an already-packed layer plus
    /// per-neuron labels, e.g. weights exported from the FPGA BlockRAM after
    /// off-line training (paper §V-F).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the layer's neuron count, or if
    /// the `BSOM_DISPATCH` environment variable names an unknown or
    /// unavailable kernel dispatch — validated **here**, eagerly, so a
    /// misconfigured deployment fails at startup on the constructing thread
    /// with a clear message instead of panicking at the first kernel call
    /// deep inside a worker.
    pub fn from_parts(
        layer: PackedLayer,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
        workers: usize,
    ) -> Self {
        Self::build(layer, labels, unknown_threshold, workers, None, 1)
    }

    /// The one construction path for a **standalone** service: resolves the
    /// worker count and queue capacity, spawns a dedicated pool, and
    /// delegates to [`build_on`](Self::build_on).
    fn build(
        layer: PackedLayer,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
        workers: usize,
        queue_capacity: Option<usize>,
        initial_version: u64,
    ) -> Self {
        let workers = resolve_workers(workers);
        let queue_capacity = resolve_queue_capacity(queue_capacity, workers);
        let pool = Arc::new(WorkerPool::spawn(workers, queue_capacity));
        Self::build_on(
            layer,
            labels,
            unknown_threshold,
            initial_version,
            pool,
            workers,
        )
    }

    /// Builds a service over an **existing** worker pool: validates the
    /// kernel dispatch eagerly and publishes the initial snapshot as
    /// `initial_version` (1 for fresh services, the checkpointed version + 1
    /// on [`resume_from_checkpoint`], the checkpointed version *exactly* on
    /// a registry reload — see `registry.rs` for why the distinction keeps
    /// evict→reload version-transparent).
    ///
    /// [`resume_from_checkpoint`]: SomService::resume_from_checkpoint
    pub(crate) fn build_on(
        layer: PackedLayer,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
        initial_version: u64,
        pool: Arc<WorkerPool>,
        workers: usize,
    ) -> Self {
        assert_eq!(
            labels.len(),
            layer.neuron_count(),
            "one label slot per neuron"
        );
        if let Err(error) = bsom_signature::validate_env_dispatch() {
            panic!("{error}");
        }
        let snapshot = Arc::new(SomSnapshot {
            version: initial_version,
            layer: Arc::new(layer),
            labels,
            unknown_threshold,
        });
        let core = Arc::new(ServiceCore {
            latest: Mutex::new(snapshot),
            version: AtomicU64::new(initial_version),
            pool,
            workers,
        });
        SomService { core }
    }

    /// Opens the service for **online learning**: publishes snapshot v1 from
    /// the map as given (labelled by a win pass over `seed_data`, which may
    /// be empty for a cold start) and returns the [`Trainer`] that owns the
    /// map from here on.
    ///
    /// Recognizers created before or after training starts are equivalent:
    /// each serves whatever snapshot is newest at its next batch.
    pub fn train_while_serve(
        som: BSom,
        schedule: TrainSchedule,
        seed_data: &[(BinaryVector, ObjectLabel)],
        config: EngineConfig,
    ) -> (Self, Trainer) {
        let workers = resolve_workers(config.workers);
        let queue_capacity = resolve_queue_capacity(config.queue_capacity, workers);
        let pool = Arc::new(WorkerPool::spawn(workers, queue_capacity));
        Self::pair_train_while_serve_on(som, schedule, seed_data, config, pool, workers)
    }

    /// [`train_while_serve`](Self::train_while_serve) over an existing
    /// worker pool — the registry's tenant-construction path. `workers` must
    /// already be resolved (non-zero).
    pub(crate) fn pair_train_while_serve_on(
        som: BSom,
        schedule: TrainSchedule,
        seed_data: &[(BinaryVector, ObjectLabel)],
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        workers: usize,
    ) -> (Self, Trainer) {
        let mut stats = vec![DecayedLabelStats::default(); som.neuron_count()];
        for (signature, label) in seed_data {
            if let Ok(winner) = som.winner(signature) {
                // Seed wins share feed-step 0: no decay separates them.
                stats[winner.index].record_win(*label, 0, config.label_decay);
            }
        }
        let labels = stats
            .iter()
            .map(DecayedLabelStats::majority_label)
            .collect();
        let service = Self::build_on(
            som.packed_layer().clone(),
            labels,
            config.unknown_threshold,
            1,
            pool,
            workers,
        );
        let trainer = Trainer {
            core: Arc::clone(&service.core),
            som,
            schedule,
            epochs_run: 0,
            steps_run: 0,
            steps_since_publish: 0,
            publish_every_steps: config.publish_every_steps,
            stats,
            label_decay: config.label_decay,
            unknown_threshold: config.unknown_threshold,
            config,
            poisoned: false,
        };
        (service, trainer)
    }

    /// Restores a train-while-serve pair from a checkpoint written by
    /// [`Trainer::write_checkpoint`], continuing **bit-identically**: the
    /// restored map carries the exact weights, `#`-counts and xorshift64*
    /// RNG position of the checkpointed one, so feeding the same signatures
    /// produces the same winners, the same weight updates and the same RNG
    /// stream as a run that never stopped (proven by the
    /// `checkpoint_resume` and `fault_injection` suites).
    ///
    /// The restored state is published immediately as snapshot version
    /// `checkpointed version + 1`, so snapshot versions stay monotonic
    /// across restarts. The service is rebuilt with the checkpointed
    /// [`EngineConfig`].
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`]: unreadable file, bad magic/format, torn or
    /// bit-flipped frame (checksum mismatch), or a payload that fails the
    /// serde/semantic validation.
    pub fn resume_from_checkpoint(
        path: impl AsRef<Path>,
    ) -> Result<(Self, Trainer), CheckpointError> {
        let doc = checkpoint::read_doc(path.as_ref())?;
        let initial_version = doc.service_version + 1;
        let workers = resolve_workers(doc.config.workers);
        let queue_capacity = resolve_queue_capacity(doc.config.queue_capacity, workers);
        let pool = Arc::new(WorkerPool::spawn(workers, queue_capacity));
        Ok(Self::pair_from_doc_on(doc, initial_version, pool, workers))
    }

    /// Rebuilds a service/trainer pair from an in-memory [`CheckpointDoc`]
    /// over an existing pool, publishing the restored state as exactly
    /// `initial_version`.
    ///
    /// The public [`resume_from_checkpoint`](Self::resume_from_checkpoint)
    /// passes `doc.service_version + 1` (a restart is visible as a version
    /// bump); the registry's evict→reload path passes `doc.service_version`
    /// unchanged, because there the checkpointed layer **is** the published
    /// snapshot (trainers are published at every tick end before they can be
    /// evicted) and the round-trip must be invisible to clients.
    pub(crate) fn pair_from_doc_on(
        doc: CheckpointDoc,
        initial_version: u64,
        pool: Arc<WorkerPool>,
        workers: usize,
    ) -> (Self, Trainer) {
        let CheckpointDoc {
            service_version: _,
            som,
            schedule,
            epochs_run,
            steps_run,
            steps_since_publish,
            config,
            stats,
        } = doc;
        let stats: Vec<DecayedLabelStats> = stats
            .into_iter()
            .map(|doc| DecayedLabelStats {
                wins: doc
                    .wins
                    .into_iter()
                    .map(|(label, weight_bits)| {
                        (
                            ObjectLabel::new(label as usize),
                            f64::from_bits(weight_bits),
                        )
                    })
                    .collect(),
                last_step: doc.last_step,
            })
            .collect();
        let labels = stats
            .iter()
            .map(DecayedLabelStats::majority_label)
            .collect();
        let service = Self::build_on(
            som.packed_layer().clone(),
            labels,
            config.unknown_threshold,
            initial_version,
            pool,
            workers,
        );
        let trainer = Trainer {
            core: Arc::clone(&service.core),
            som,
            schedule,
            epochs_run,
            steps_run,
            steps_since_publish,
            publish_every_steps: config.publish_every_steps,
            stats,
            label_decay: config.label_decay,
            unknown_threshold: config.unknown_threshold,
            config,
            poisoned: false,
        };
        (service, trainer)
    }

    /// A point-in-time view of the supervision state: workers alive vs
    /// configured, bounded-queue depth, and the panic/respawn counters.
    pub fn health(&self) -> ServiceHealth {
        self.core.health()
    }

    /// A new recognizer handle, pinned to the latest snapshot until its next
    /// refresh. Handles are independent: create one per serving thread.
    pub fn recognizer(&self) -> Recognizer {
        Recognizer {
            current: self.core.snapshot(),
            core: Arc::clone(&self.core),
        }
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<SomSnapshot> {
        self.core.snapshot()
    }

    /// Version of the latest published snapshot.
    pub fn version(&self) -> u64 {
        self.core.version.load(Ordering::Acquire)
    }

    /// Number of worker threads in the shared pool.
    pub fn worker_count(&self) -> usize {
        self.core.workers
    }

    /// `(queue_depth, queue_capacity)` of the bounded job queue, read from
    /// atomics only — the cheap health probe serving front-ends sample per
    /// request, where the full [`health`](Self::health) report would take a
    /// lock for `last_panic`.
    pub fn queue_pressure(&self) -> (usize, usize) {
        self.core.queue_pressure()
    }

    /// Classifies a batch against one **pinned** snapshot (no refresh) —
    /// the frozen-serving path used by the legacy `RecognitionEngine`
    /// wrapper and by A/B comparisons across versions.
    pub fn classify_pinned(
        &self,
        snapshot: &SomSnapshot,
        signatures: impl Into<SignatureBatch>,
    ) -> Vec<Prediction> {
        self.core.classify_on(snapshot, &signatures.into())
    }
}

/// The training handle: owns the [`BSom`], feeds it labelled signatures, and
/// publishes serving snapshots. Exactly one trainer exists per
/// train-while-serve service.
///
/// Neuron labels are maintained **online**: every fed signature adds a win
/// for its label to the winning neuron's statistics (the same win-frequency
/// rule as [`LabelledSom::label`], accumulated as data streams instead of in
/// a separate pass), and each publish assigns every neuron its current
/// majority label. With [`EngineConfig::label_decay`] configured, each win's
/// weight fades exponentially with its age in feed steps, so under
/// appearance drift a neuron whose cluster changes identity relabels itself
/// as soon as fresh wins outweigh the faded history — no manual
/// [`reset_label_stats`](Trainer::reset_label_stats) required.
pub struct Trainer {
    core: Arc<ServiceCore>,
    som: BSom,
    schedule: TrainSchedule,
    epochs_run: usize,
    steps_run: u64,
    steps_since_publish: u64,
    publish_every_steps: Option<u64>,
    stats: Vec<DecayedLabelStats>,
    label_decay: Option<f64>,
    unknown_threshold: Option<f64>,
    /// The full construction config, persisted into checkpoints so
    /// [`SomService::resume_from_checkpoint`] rebuilds the same service.
    config: EngineConfig,
    /// Set when a [`try_feed`](Trainer::try_feed) step panicked: the map may
    /// hold a half-applied update, so this trainer refuses further training.
    poisoned: bool,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("epochs_run", &self.epochs_run)
            .field("steps_run", &self.steps_run)
            .field(
                "published_version",
                &self.core.version.load(Ordering::Acquire),
            )
            .finish()
    }
}

impl Trainer {
    /// The map in its current training state.
    pub fn som(&self) -> &BSom {
        &self.som
    }

    /// The schedule the training time follows.
    pub fn schedule(&self) -> &TrainSchedule {
        &self.schedule
    }

    /// Epochs of the schedule completed so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Training steps (pattern presentations) completed so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// One labelled training step at the schedule's current epoch: winner
    /// search on the shared packed layout, neighbourhood update, win-stat
    /// accumulation. Publishes automatically when the configured step-count
    /// cadence ([`EngineConfig::publish_every_steps`]) is reached.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length
    /// signature.
    pub fn feed(
        &mut self,
        signature: &BinaryVector,
        label: ObjectLabel,
    ) -> Result<Winner, SomError> {
        let winner = self
            .som
            .train_step(signature, self.epochs_run, &self.schedule)?;
        self.stats[winner.index].record_win(label, self.steps_run, self.label_decay);
        self.steps_run += 1;
        self.steps_since_publish += 1;
        if let Some(every) = self.publish_every_steps {
            if self.steps_since_publish >= every {
                self.publish();
            }
        }
        Ok(winner)
    }

    /// [`feed`](Self::feed) with the training step wrapped in
    /// `catch_unwind` — the supervised trainer loop. A panic inside the
    /// step is contained and returned as
    /// [`EngineError::TrainerPanicked`]; because the map may then hold a
    /// half-applied update, the trainer **poisons itself** and every later
    /// call returns [`EngineError::TrainerPoisoned`]. The service keeps
    /// serving its last published snapshot throughout — recovery is
    /// [`SomService::resume_from_checkpoint`] from the last checkpoint.
    ///
    /// # Errors
    ///
    /// [`EngineError::Som`] for a wrong-length signature (the trainer stays
    /// usable), [`EngineError::TrainerPanicked`] /
    /// [`EngineError::TrainerPoisoned`] as above.
    pub fn try_feed(
        &mut self,
        signature: &BinaryVector,
        label: ObjectLabel,
    ) -> Result<Winner, EngineError> {
        if self.poisoned {
            return Err(EngineError::TrainerPoisoned);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::faultpoint::hit("trainer.feed");
            self.som
                .train_step(signature, self.epochs_run, &self.schedule)
        }));
        let winner = match outcome {
            Ok(result) => result?,
            Err(payload) => {
                self.poisoned = true;
                return Err(EngineError::TrainerPanicked {
                    message: panic_message(payload.as_ref()),
                });
            }
        };
        self.stats[winner.index].record_win(label, self.steps_run, self.label_decay);
        self.steps_run += 1;
        self.steps_since_publish += 1;
        if let Some(every) = self.publish_every_steps {
            if self.steps_since_publish >= every {
                self.publish();
            }
        }
        Ok(winner)
    }

    /// `true` once a [`try_feed`](Self::try_feed) step panicked; the trainer
    /// then refuses further training (see [`EngineError::TrainerPoisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Recovers a **poisoned** trainer in place by rebuilding its map from
    /// the last *published* snapshot — the in-memory recovery path when no
    /// checkpoint file exists (the registry exposes this as
    /// `replace_trainer`). Usable on a healthy trainer too, where it rolls
    /// uncommitted steps back to the published state.
    ///
    /// The published layer is by construction the last consistent state a
    /// client could observe, so the rebuilt map can never carry the
    /// half-applied update that caused the poisoning. Win statistics are
    /// kept: they are recorded only after a training step returns, so a
    /// panicking step never tears them.
    ///
    /// Recovery is deterministic but **not** bit-identical to a run that
    /// never panicked: the rebuilt map restarts its xorshift64* stream from
    /// the fixed [`BSom::from_weights`] seed, and steps fed since the last
    /// publish are lost (they were never visible to clients). The epoch and
    /// step clocks continue from where training stopped.
    ///
    /// # Errors
    ///
    /// [`EngineError::Som`] if the published layer cannot be rebuilt into a
    /// map (cannot happen for layers produced by a trainer, which are never
    /// empty).
    pub fn reset_from_snapshot(&mut self) -> Result<(), EngineError> {
        let snapshot = self.core.snapshot();
        let layer = snapshot.layer();
        let mut weights = Vec::with_capacity(layer.neuron_count());
        for index in 0..layer.neuron_count() {
            let mut weight = TriStateVector::all_dont_care(layer.vector_len());
            layer.copy_neuron_into(index, &mut weight);
            weights.push(weight);
        }
        // `from_weights` resets the update probabilities and neighbour rule
        // to the defaults; re-apply the map's own configuration.
        let config = *self.som.config();
        self.som = BSom::from_weights(weights)?
            .with_neighbour_rule(config.neighbour_rule)
            .with_update_probabilities(config.relax_probability, config.commit_probability);
        self.steps_since_publish = 0;
        self.poisoned = false;
        Ok(())
    }

    /// Writes a crash-safe checkpoint of the **entire training state** —
    /// weights with their `#`-counts, the xorshift64* RNG position, the
    /// schedule position, the step clocks, the decayed label statistics
    /// (bit-exact: weights round-trip as raw `f64` bits) and the service
    /// config/version — to `path`, framed with a length prefix and an
    /// FNV-1a checksum and committed by temp-file + atomic rename, so a
    /// crash mid-write can never leave a half-written file at `path` (see
    /// DESIGN.md §"Fault model and recovery" for the frame format).
    ///
    /// [`SomService::resume_from_checkpoint`] restores the pair and
    /// continues bit-identically to a run that never stopped.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the temp file cannot be written, synced
    /// or renamed into place.
    pub fn write_checkpoint(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<CheckpointInfo, CheckpointError> {
        checkpoint::write_doc(path.as_ref(), &self.checkpoint_doc())
    }

    /// The full training state as an in-memory checkpoint document — what
    /// [`write_checkpoint`](Self::write_checkpoint) frames to disk. The
    /// registry uses this (via the same `write_doc` frames) to spill cold
    /// tenants.
    pub(crate) fn checkpoint_doc(&self) -> CheckpointDoc {
        CheckpointDoc {
            service_version: self.core.version.load(Ordering::Acquire),
            som: self.som.clone(),
            schedule: self.schedule,
            epochs_run: self.epochs_run,
            steps_run: self.steps_run,
            steps_since_publish: self.steps_since_publish,
            config: self.config,
            stats: self
                .stats
                .iter()
                .map(|stat| NeuronStatsDoc {
                    last_step: stat.last_step,
                    wins: stat
                        .wins
                        .iter()
                        .map(|(label, weight)| (label.id() as u64, weight.to_bits()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Advances the schedule to the next epoch and publishes — the epoch
    /// boundary for callers that stream through [`feed`](Self::feed) rather
    /// than training from a fixed dataset.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epochs_run += 1;
        self.publish()
    }

    /// Runs `epochs` full shuffled passes over labelled `data`, publishing a
    /// snapshot at every epoch boundary (each step also honours the
    /// configured step-count cadence, exactly like [`feed`](Self::feed)).
    /// The shuffle reorders from the identity each epoch, so a run split
    /// across calls is bit-identical to a one-shot run with the same RNG
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyTrainingSet`] for empty `data` and
    /// propagates [`SomError::InputLengthMismatch`] from mismatched
    /// signatures.
    pub fn train_epochs<R: rand::Rng + ?Sized>(
        &mut self,
        data: &[(BinaryVector, ObjectLabel)],
        epochs: usize,
        rng: &mut R,
    ) -> Result<TrainReport, SomError> {
        if data.is_empty() {
            return Err(SomError::EmptyTrainingSet);
        }
        let start = std::time::Instant::now();
        let steps_before = self.steps_run;
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..epochs {
            crate::train::fresh_shuffled_order(&mut order, rng);
            for &idx in &order {
                let (signature, label) = &data[idx];
                self.feed(signature, *label)?;
            }
            self.epochs_run += 1;
            self.publish();
        }
        let steps = self.steps_run - steps_before;
        let seconds = start.elapsed().as_secs_f64();
        Ok(TrainReport {
            epochs,
            steps,
            seconds,
            steps_per_second: steps as f64 / seconds.max(f64::MIN_POSITIVE),
        })
    }

    /// Publishes the current weights and labelling as a new serving
    /// snapshot and returns its version. Cheap: one copy-on-write clone of
    /// the incrementally-maintained packed layout (word rows untouched
    /// since the last publish stay shared) plus an atomic pointer swap —
    /// recognizers mid-batch are untouched and pick the new version up on
    /// their next batch.
    pub fn publish(&mut self) -> u64 {
        self.steps_since_publish = 0;
        let labels = self
            .stats
            .iter()
            .map(DecayedLabelStats::majority_label)
            .collect();
        self.core.publish(
            Arc::new(self.som.packed_layer().clone()),
            labels,
            self.unknown_threshold,
        )
    }

    /// Steps fed since the last publish — 0 means the published snapshot is
    /// exactly the trainer's current state. The registry's tick scheduler
    /// uses this to publish only tenants that actually moved.
    pub(crate) fn steps_since_publish(&self) -> u64 {
        self.steps_since_publish
    }

    /// [`publish`](Self::publish) only when steps were fed since the last
    /// publish; returns the new version, or `None` when already clean.
    pub(crate) fn publish_if_dirty(&mut self) -> Option<u64> {
        if self.steps_since_publish == 0 {
            None
        } else {
            Some(self.publish())
        }
    }

    /// Clears the accumulated win statistics. Useful for windowed labelling
    /// under drift when no [`EngineConfig::label_decay`] is configured:
    /// reset, replay a recent window through [`feed`](Self::feed), publish.
    /// (With decay configured the statistics fade on their own.)
    pub fn reset_label_stats(&mut self) {
        for stat in &mut self.stats {
            stat.clear();
        }
    }

    /// Gives the trained map back, consuming the trainer. The service keeps
    /// serving its last published snapshot.
    pub fn into_som(self) -> BSom {
        self.som
    }
}

/// A serving handle: classifies batches against the snapshot it holds and
/// picks up newly published snapshots lock-free (one atomic load) at the
/// start of each batch.
pub struct Recognizer {
    core: Arc<ServiceCore>,
    current: Arc<SomSnapshot>,
}

impl std::fmt::Debug for Recognizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recognizer")
            .field("version", &self.current.version())
            .field("neurons", &self.current.layer().neuron_count())
            .finish()
    }
}

impl Recognizer {
    /// The snapshot this recognizer currently serves from.
    pub fn snapshot(&self) -> &SomSnapshot {
        &self.current
    }

    /// Version of the snapshot this recognizer currently serves from.
    pub fn version(&self) -> u64 {
        self.current.version()
    }

    /// `(queue_depth, queue_capacity)` of the shared pool's bounded job
    /// queue — see [`SomService::queue_pressure`]. Lets a batching scheduler
    /// that holds only a `Recognizer` adapt to pool pressure.
    pub fn queue_pressure(&self) -> (usize, usize) {
        self.core.queue_pressure()
    }

    /// Picks up the latest published snapshot if it is newer than the held
    /// one. Returns `true` if the snapshot changed. The fast path (nothing
    /// published) is a single atomic load; the lock is taken only to clone
    /// the new `Arc`.
    pub fn refresh(&mut self) -> bool {
        if self.core.version.load(Ordering::Acquire) == self.current.version() {
            return false;
        }
        self.current = self.core.snapshot();
        true
    }

    /// Classifies a batch of signatures, sharding the winner search across
    /// the service's worker pool. Refreshes to the newest snapshot first;
    /// the whole batch then runs against that one snapshot. Results are in
    /// input order; wrong-length signatures yield [`Prediction::Unknown`].
    pub fn classify_batch(&mut self, signatures: impl Into<SignatureBatch>) -> Vec<Prediction> {
        self.refresh();
        self.core.classify_on(&self.current, &signatures.into())
    }

    /// [`classify_batch`](Self::classify_batch) with **load shedding**: if
    /// the bounded job queue cannot take every shard of this batch without
    /// blocking, the batch is rejected with [`EngineError::Overloaded`]
    /// instead of queueing without bound — the graceful-degradation path for
    /// a live camera feed, where a stale frame is better dropped than
    /// stalled on. Check [`SomService::health`] for the queue depth that
    /// triggered the shed.
    ///
    /// # Errors
    ///
    /// [`EngineError::Overloaded`] when the queue is full,
    /// [`EngineError::PoolShutDown`] in a shutdown race.
    pub fn try_classify_batch(
        &mut self,
        signatures: impl Into<SignatureBatch>,
    ) -> Result<Vec<Prediction>, EngineError> {
        self.refresh();
        self.core
            .classify_with_admission(&self.current, &signatures.into(), Admission::Shed)
    }

    /// Classifies one signature on the calling thread (no pool round-trip) —
    /// the low-latency single-query path. Refreshes first.
    pub fn classify(&mut self, signature: &BinaryVector) -> Prediction {
        self.refresh();
        let winner = self.current.layer().winner(signature).ok();
        self.current.verdict(winner)
    }

    /// Runs a batch of frames through a [`SurveillancePipeline`] and
    /// classifies every surviving tracked object in one sharded winner
    /// search against the (refreshed) current snapshot.
    pub fn process_frames(
        &mut self,
        pipeline: &mut SurveillancePipeline,
        frames: &[RgbImage],
    ) -> Vec<Vec<RecognizedObject>> {
        self.refresh();
        let core = Arc::clone(&self.core);
        let snapshot = Arc::clone(&self.current);
        recognize_frames(pipeline, frames, move |signatures| {
            core.classify_on(&snapshot, &SignatureBatch::from(signatures))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsom_som::BSomConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5E121CE)
    }

    fn labelled_patterns(r: &mut StdRng, n: usize, len: usize) -> Vec<(BinaryVector, ObjectLabel)> {
        (0..n)
            .map(|i| (BinaryVector::random(len, r), ObjectLabel::new(i % 3)))
            .collect()
    }

    #[test]
    fn serve_only_service_matches_the_scalar_classifier() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 6, 96);
        let mut som = BSom::new(BSomConfig::new(12, 96), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(40), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som, &data);
        let service = SomService::serve(&classifier, EngineConfig::with_workers(3));
        assert_eq!(service.version(), 1);
        let mut recognizer = service.recognizer();
        let batch: Vec<BinaryVector> = (0..40).map(|_| BinaryVector::random(96, &mut r)).collect();
        let out = recognizer.classify_batch(&batch);
        for (s, p) in batch.iter().zip(&out) {
            assert_eq!(*p, classifier.classify(s));
        }
        // Nothing publishes into a serve-only service.
        assert!(!recognizer.refresh());
    }

    #[test]
    fn train_epochs_publishes_on_every_epoch_boundary() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 5, 64);
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(10),
            &data,
            EngineConfig::with_workers(2),
        );
        assert_eq!(service.version(), 1);
        let report = trainer.train_epochs(&data, 4, &mut r).unwrap();
        assert_eq!(report.epochs, 4);
        assert_eq!(report.steps, 20);
        assert_eq!(trainer.epochs_run(), 4);
        assert_eq!(service.version(), 5, "v1 + one publish per epoch");
    }

    #[test]
    fn recognizer_picks_up_published_snapshots_and_pinned_one_does_not() {
        let mut r = rng();
        // Distinct labels per pattern: online win-frequency labelling then
        // converges to one dedicated neuron per identity.
        let data: Vec<(BinaryVector, ObjectLabel)> = (0..6)
            .map(|i| (BinaryVector::random(64, &mut r), ObjectLabel::new(i)))
            .collect();
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(50),
            &data,
            EngineConfig::with_workers(2),
        );
        let mut live = service.recognizer();
        let pinned = service.snapshot();
        assert_eq!(live.version(), 1);

        trainer.train_epochs(&data, 50, &mut r).unwrap();
        assert!(live.refresh());
        assert_eq!(live.version(), 51);
        assert_eq!(pinned.version(), 1, "held snapshots are immutable");

        // The refreshed recognizer serves the trained weights: every
        // training pattern is now an exact match of some neuron, and the
        // live path is bit-identical to a frozen classify on that snapshot.
        let signatures: Vec<BinaryVector> = data.iter().map(|(s, _)| s.clone()).collect();
        let out = live.classify_batch(&signatures);
        let frozen = service.classify_pinned(&service.snapshot(), &signatures);
        assert_eq!(out, frozen);
        // Training moved the weights: the served layer differs from v1's,
        // and training patterns are now strictly closer to the map.
        assert_ne!(live.snapshot().layer(), pinned.layer());
        for signature in &signatures {
            let before = pinned.layer().winner(signature).unwrap().distance;
            let after = live.snapshot().layer().winner(signature).unwrap().distance;
            assert!(after <= before, "training must not push a pattern away");
        }
    }

    #[test]
    fn feed_publishes_on_the_step_cadence() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 4, 64);
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(10),
            &[],
            EngineConfig::with_workers(1).with_publish_every_steps(3),
        );
        for (signature, label) in data.iter().cycle().take(7) {
            trainer.feed(signature, *label).unwrap();
        }
        // Publishes after steps 3 and 6 (7 steps total).
        assert_eq!(service.version(), 3);
        assert_eq!(trainer.steps_run(), 7);
    }

    #[test]
    fn advance_epoch_publishes_and_moves_the_schedule() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 4, 64);
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(10),
            &[],
            EngineConfig::with_workers(1),
        );
        for (signature, label) in &data {
            trainer.feed(signature, *label).unwrap();
        }
        assert_eq!(
            service.version(),
            1,
            "no cadence configured: no auto-publish"
        );
        let version = trainer.advance_epoch();
        assert_eq!(version, 2);
        assert_eq!(trainer.epochs_run(), 1);
        assert_eq!(service.version(), 2);
    }

    #[test]
    fn published_snapshot_layer_equals_a_fresh_pack() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 5, 70);
        let som = BSom::new(BSomConfig::new(6, 70), &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(8),
            &data,
            EngineConfig::with_workers(1),
        );
        trainer.train_epochs(&data, 8, &mut r).unwrap();
        let snapshot = service.snapshot();
        assert_eq!(snapshot.layer(), &PackedLayer::pack(trainer.som()));
    }

    #[test]
    fn single_classify_agrees_with_the_batch_path() {
        let mut r = rng();
        let data = labelled_patterns(&mut r, 6, 96);
        let mut som = BSom::new(BSomConfig::new(10, 96), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(30), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som, &data);
        let service = SomService::serve(&classifier, EngineConfig::with_workers(2));
        let mut recognizer = service.recognizer();
        let probes: Vec<BinaryVector> = (0..10).map(|_| BinaryVector::random(96, &mut r)).collect();
        let batched = recognizer.classify_batch(&probes);
        for (probe, expected) in probes.iter().zip(&batched) {
            assert_eq!(recognizer.classify(probe), *expected);
        }
        // Wrong-length single queries degrade to Unknown like the batch path.
        assert_eq!(
            recognizer.classify(&BinaryVector::zeros(8)),
            Prediction::Unknown
        );
    }

    #[test]
    fn decayed_stats_relabel_under_drift_without_reset() {
        // One neuron, one signature, two "identities": the early phase wins
        // as label 0, then — much later on the step clock — a handful of
        // label-1 wins arrive. With a short half-life the faded label-0
        // weight loses the majority; without decay it never does.
        let mut r = rng();
        let signature = BinaryVector::random(64, &mut r);
        let run = |config: EngineConfig, r: &mut StdRng| {
            let som = BSom::new(BSomConfig::new(1, 64), r);
            let (service, mut trainer) =
                SomService::train_while_serve(som, TrainSchedule::new(1000), &[], config);
            for _ in 0..100 {
                trainer.feed(&signature, ObjectLabel::new(0)).unwrap();
            }
            for _ in 0..20 {
                trainer.feed(&signature, ObjectLabel::new(1)).unwrap();
            }
            trainer.publish();
            service.snapshot().neuron_labels()[0]
        };
        let decayed = run(
            EngineConfig::with_workers(1).with_label_half_life_steps(10),
            &mut r,
        );
        assert_eq!(
            decayed,
            Some(ObjectLabel::new(1)),
            "a 10-step half-life must fade the 100 stale label-0 wins"
        );
        let cumulative = run(EngineConfig::with_workers(1), &mut r);
        assert_eq!(
            cumulative,
            Some(ObjectLabel::new(0)),
            "without decay the cumulative majority stays with the old label"
        );
    }

    #[test]
    fn decayed_stats_tie_break_and_interleaving_match_the_cumulative_rule() {
        // Same-step wins never decay relative to each other, so equal counts
        // tie-break towards the smaller label id, like NeuronLabelStats.
        let mut stats = DecayedLabelStats::default();
        stats.record_win(ObjectLabel::new(3), 0, Some(0.5));
        stats.record_win(ObjectLabel::new(1), 0, Some(0.5));
        assert_eq!(stats.majority_label(), Some(ObjectLabel::new(1)));
        // A fresh win at a much later step dominates both faded entries.
        stats.record_win(ObjectLabel::new(7), 40, Some(0.5));
        assert_eq!(stats.majority_label(), Some(ObjectLabel::new(7)));
        // Long-dead entries are pruned, not kept at denormal weight.
        stats.record_win(ObjectLabel::new(7), 1000, Some(0.5));
        assert_eq!(stats.wins.len(), 1);
        // Without decay the weights are plain counts.
        let mut plain = DecayedLabelStats::default();
        plain.record_win(ObjectLabel::new(2), 0, None);
        plain.record_win(ObjectLabel::new(2), 900, None);
        plain.record_win(ObjectLabel::new(5), 901, None);
        assert_eq!(plain.majority_label(), Some(ObjectLabel::new(2)));
    }

    #[test]
    fn reset_label_stats_relabels_from_scratch() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 64), &mut r);
        let a = BinaryVector::random(64, &mut r);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(4),
            &[],
            EngineConfig::with_workers(1),
        );
        trainer.feed(&a, ObjectLabel::new(0)).unwrap();
        trainer.publish();
        assert!(service
            .snapshot()
            .neuron_labels()
            .iter()
            .any(|l| l.is_some()));
        trainer.reset_label_stats();
        trainer.publish();
        assert!(service
            .snapshot()
            .neuron_labels()
            .iter()
            .all(|l| l.is_none()));
    }
}
