//! Fault-injection tier for the multi-tenant registry (requires
//! `--features fault-injection`), extending `tests/fault_injection.rs` to
//! the failure paths the registry adds:
//!
//! * a panic at the `registry.evict` failpoint — after the spill frame is
//!   written, before the in-memory state is dropped — leaves the tenant
//!   resident and servable, with nothing counted as evicted;
//! * a torn spill file at reload time is rejected with a typed
//!   [`CheckpointError`] and does **not** poison the registry: the tenant
//!   stays evicted, every other tenant keeps serving, and repairing the
//!   file makes the reload succeed bit-identically;
//! * a panic at the `registry.reload` failpoint leaves the tenant evicted
//!   and the registry consistent;
//! * a panicked training step poisons exactly one tenant
//!   ([`EngineError::TrainerPoisoned`]) while its snapshot keeps serving,
//!   eviction of the poisoned tenant is refused, and
//!   [`MapRegistry::replace_trainer`] (the
//!   [`Trainer::reset_from_snapshot`] path) recovers it in place.
//!
//! Same process-global failpoint registry as `fault_injection.rs`, same
//! [`harness`] serialization; CI runs this binary with `--test-threads=1`.
//!
//! [`CheckpointError`]: bsom_engine::CheckpointError

#![cfg(feature = "fault-injection")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use bsom_engine::faultpoint::{arm_panic, hit_count, reset};
use bsom_engine::{EngineConfig, EngineError, MapRegistry, RegistryConfig};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VECTOR_LEN: usize = 80;

/// Serializes the suite around the process-global failpoint registry (see
/// `fault_injection.rs`) and resets it on entry and on drop.
fn harness() -> HarnessGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    HarnessGuard { _guard: guard }
}

struct HarnessGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for HarnessGuard {
    fn drop(&mut self) {
        reset();
    }
}

/// A fresh, empty spill directory per test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bsom-registry-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn training_stream(seed: u64, steps: usize) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|i| {
            (
                BinaryVector::random(VECTOR_LEN, &mut rng),
                ObjectLabel::new(i % 3),
            )
        })
        .collect()
}

fn probes(seed: u64, count: usize) -> Vec<BinaryVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| BinaryVector::random(VECTOR_LEN, &mut rng))
        .collect()
}

/// A registry with one trained tenant `"t"` (and optionally a bystander),
/// spilling into `dir`.
fn trained_registry(dir: &PathBuf, bystander: bool) -> MapRegistry {
    let registry =
        MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(1)).with_spill_dir(dir));
    let mut ids = vec!["t"];
    if bystander {
        ids.push("bystander");
    }
    for (i, id) in ids.iter().enumerate() {
        let som = BSom::new(
            BSomConfig::new(8, VECTOR_LEN),
            &mut StdRng::seed_from_u64(i as u64),
        );
        registry
            .create_tenant(*id, som, TrainSchedule::new(usize::MAX), &[])
            .unwrap();
        for (signature, label) in &training_stream(0xA5A5 + i as u64, 24) {
            registry.feed(*id, signature, *label).unwrap();
        }
    }
    let report = registry.train_tick(u64::MAX);
    assert!(report.failures.is_empty(), "{report:?}");
    registry
}

/// The single spill frame `dir` holds (fails the test if there isn't
/// exactly one) — how the corruption tests find the file to tear.
fn only_spill_file(dir: &PathBuf) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .collect();
    assert_eq!(
        files.len(),
        1,
        "expected exactly one spill frame in {dir:?}"
    );
    files.pop().unwrap()
}

/// Evict ordering: the spill frame is written *before* the `registry.evict`
/// failpoint fires, and the in-memory state is dropped after — so a panic
/// mid-evict leaves the tenant resident, servable and uncounted.
#[test]
fn panic_mid_evict_leaves_the_tenant_resident_and_servable() {
    let _harness = harness();
    let dir = temp_dir("evict-panic");
    let registry = trained_registry(&dir, false);
    let before = registry.tenant_som("t").unwrap();
    let version_before = registry.version("t").unwrap();

    arm_panic("registry.evict", hit_count("registry.evict"));
    let outcome = catch_unwind(AssertUnwindSafe(|| registry.evict("t")));
    assert!(outcome.is_err(), "the armed failpoint must panic");

    // The tenant never left memory: still resident, identical state, and
    // the books show no eviction.
    assert!(registry.is_resident("t").unwrap());
    assert_eq!(registry.tenant_som("t").unwrap(), before);
    assert_eq!(registry.version("t").unwrap(), version_before);
    assert_eq!(registry.stats().evictions_total, 0);
    assert_eq!(registry.classify("t", probes(7, 3)).unwrap().len(), 3);

    // Disarmed, the same evict goes through and the round trip is clean.
    registry.evict("t").unwrap();
    assert!(!registry.is_resident("t").unwrap());
    assert_eq!(registry.tenant_som("t").unwrap(), before);
}

/// A spill frame torn on disk is rejected at reload with a typed
/// checkpoint error; the tenant stays evicted (servable again the moment
/// the frame is repaired), the bystander never notices, and the registry's
/// own state is not poisoned.
#[test]
fn torn_spill_frame_is_rejected_typed_without_poisoning_the_registry() {
    let _harness = harness();
    let dir = temp_dir("torn-reload");
    let registry = trained_registry(&dir, true);
    let before = registry.tenant_som("t").unwrap();
    registry.evict("t").unwrap();

    // Tear the frame: cut it mid-payload (the validating loader must see a
    // truncated frame, not a short read masked as success).
    let spill = only_spill_file(&dir);
    let pristine = std::fs::read(&spill).unwrap();
    std::fs::write(&spill, &pristine[..pristine.len() / 2]).unwrap();

    for _ in 0..2 {
        match registry.reload("t") {
            Err(EngineError::Checkpoint(_)) => {}
            other => panic!("torn frame must fail typed, got {other:?}"),
        }
        assert!(
            !registry.is_resident("t").unwrap(),
            "tenant must stay evicted"
        );
    }
    // classify and tenant_som hit the same typed wall, and pending work is
    // preserved rather than dropped.
    assert!(matches!(
        registry.classify("t", probes(9, 2)),
        Err(EngineError::Checkpoint(_))
    ));
    let (signature, label) = &training_stream(0xBEE, 1)[0];
    registry.feed("t", signature, *label).unwrap();
    let report = registry.train_tick(u64::MAX);
    assert_eq!(report.failures.len(), 1, "{report:?}");
    assert!(matches!(report.failures[0].1, EngineError::Checkpoint(_)));
    assert_eq!(
        registry.stats().pending_steps,
        1,
        "queued example must survive"
    );

    // The bystander is untouched throughout.
    assert_eq!(
        registry.classify("bystander", probes(11, 2)).unwrap().len(),
        2
    );
    assert!(!registry.is_poisoned("bystander").unwrap());

    // Repairing the frame fully recovers the tenant, bit-identically, and
    // the queued example finally trains.
    std::fs::write(&spill, &pristine).unwrap();
    registry.reload("t").unwrap();
    assert_eq!(registry.tenant_som("t").unwrap(), before);
    let report = registry.train_tick(u64::MAX);
    assert!(report.failures.is_empty(), "{report:?}");
    assert_eq!(report.steps, 1);
}

/// A panic at the `registry.reload` failpoint (before the frame is even
/// read) leaves the tenant evicted and the registry consistent; the next
/// disarmed touch reloads transparently.
#[test]
fn panic_mid_reload_leaves_the_tenant_evicted_and_recoverable() {
    let _harness = harness();
    let dir = temp_dir("reload-panic");
    let registry = trained_registry(&dir, false);
    let before = registry.tenant_som("t").unwrap();
    registry.evict("t").unwrap();

    arm_panic("registry.reload", hit_count("registry.reload"));
    let outcome = catch_unwind(AssertUnwindSafe(|| registry.reload("t")));
    assert!(outcome.is_err(), "the armed failpoint must panic");
    assert!(!registry.is_resident("t").unwrap());
    assert_eq!(registry.stats().reloads_total, 0);

    // Disarmed: the next touch reloads bit-identically.
    assert_eq!(registry.tenant_som("t").unwrap(), before);
    assert!(registry.is_resident("t").unwrap());
    assert_eq!(registry.stats().reloads_total, 1);
}

/// The poisoned-trainer regression (the latent gap this PR closes): a
/// panicked training step poisons exactly one tenant, its published
/// snapshot keeps serving, eviction is refused typed, and
/// `replace_trainer` recovers it in place from the snapshot — no
/// checkpoint file involved.
#[test]
fn trainer_poisoning_is_contained_and_replace_trainer_recovers() {
    let _harness = harness();
    let dir = temp_dir("poison");
    let registry = trained_registry(&dir, true);
    let version_before = registry.version("t").unwrap();

    // "t" rotates first (slot 0), so the armed one-shot panic lands on its
    // next training step.
    for (signature, label) in &training_stream(0xD00D, 4) {
        registry.feed("t", signature, *label).unwrap();
        registry.feed("bystander", signature, *label).unwrap();
    }
    arm_panic("trainer.feed", hit_count("trainer.feed"));
    let report = registry.train_tick(u64::MAX);
    assert_eq!(report.failures.len(), 1, "{report:?}");
    assert_eq!(report.failures[0].0.as_str(), "t");
    assert!(matches!(
        report.failures[0].1,
        EngineError::TrainerPanicked { .. }
    ));

    // Blast radius: exactly one tenant. The bystander trained its whole
    // round; the victim still serves its last published snapshot.
    assert!(registry.is_poisoned("t").unwrap());
    assert!(!registry.is_poisoned("bystander").unwrap());
    assert_eq!(registry.version("t").unwrap(), version_before);
    assert_eq!(registry.classify("t", probes(13, 2)).unwrap().len(), 2);

    // A poisoned tenant is refused eviction (its map may hold a torn
    // update) and keeps failing ticks typed.
    assert!(matches!(
        registry.evict("t"),
        Err(EngineError::TrainerPoisoned)
    ));
    let (signature, label) = &training_stream(0xAF7E4, 1)[0];
    registry.feed("t", signature, *label).unwrap();
    let report = registry.train_tick(u64::MAX);
    assert_eq!(report.failures.len(), 1, "{report:?}");
    assert!(matches!(report.failures[0].1, EngineError::TrainerPoisoned));

    // Recovery: reset the trainer from the published snapshot, then train
    // and publish again — and now eviction works too.
    registry.replace_trainer("t").unwrap();
    assert!(!registry.is_poisoned("t").unwrap());
    for (signature, label) in &training_stream(0x600D, 6) {
        registry.feed("t", signature, *label).unwrap();
    }
    let report = registry.train_tick(u64::MAX);
    assert!(report.failures.is_empty(), "{report:?}");
    assert_eq!(registry.version("t").unwrap(), version_before + 1);
    registry.evict("t").unwrap();
    assert_eq!(registry.classify("t", probes(17, 2)).unwrap().len(), 2);
}

/// `replace_trainer` on a healthy tenant is a harmless reset: training
/// resumes deterministically from the published weights.
#[test]
fn replace_trainer_on_a_healthy_tenant_resumes_from_the_snapshot() {
    let _harness = harness();
    let dir = temp_dir("healthy-replace");
    let registry = trained_registry(&dir, false);
    let published = registry.tenant_som("t").unwrap();
    let version = registry.version("t").unwrap();
    let served_before = registry.classify("t", probes(19, 3)).unwrap();

    registry.replace_trainer("t").unwrap();
    // The reset rebuilds the map from the published layer: same weights and
    // `#`-counts (the RNG stream deliberately restarts — see
    // `Trainer::reset_from_snapshot`), and the serving side is untouched.
    assert_eq!(
        registry.tenant_som("t").unwrap().dont_care_counts(),
        published.dont_care_counts()
    );
    assert_eq!(registry.version("t").unwrap(), version);
    assert_eq!(
        registry.classify("t", probes(19, 3)).unwrap(),
        served_before
    );
    for (signature, label) in &training_stream(0x11, 8) {
        registry.feed("t", signature, *label).unwrap();
    }
    let report = registry.train_tick(u64::MAX);
    assert!(report.failures.is_empty(), "{report:?}");
    assert_eq!(report.steps, 8);
}
