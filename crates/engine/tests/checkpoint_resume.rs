//! Crash-safe checkpoint suite (no fault injection required).
//!
//! Pins down the three checkpoint guarantees of DESIGN.md §"Fault model
//! and recovery":
//!
//! 1. **Bit-identical continuation** — a run that checkpoints at step `K`,
//!    drops everything and resumes produces, over the remaining steps,
//!    exactly the winners, weights, `#`-counts, xorshift64* RNG positions
//!    and classifications of a run that never stopped.
//! 2. **Version continuity** — the resumed service publishes the restored
//!    state as `checkpointed version + 1` and the publish cadence picks up
//!    mid-count (`steps_since_publish` is part of the checkpoint).
//! 3. **Typed failure** — a missing file is a [`CheckpointError::Io`], not
//!    a panic.

use std::path::PathBuf;

use bsom_engine::{CheckpointError, EngineConfig, SomService, Trainer};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VECTOR_LEN: usize = 96;

/// A unique temp path per test so suites can run in parallel.
fn temp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bsom-checkpoint-resume-{}-{tag}.ckpt",
        std::process::id()
    ))
}

fn training_stream(seed: u64, steps: usize) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|i| {
            (
                BinaryVector::random(VECTOR_LEN, &mut rng),
                ObjectLabel::new(i % 3),
            )
        })
        .collect()
}

fn fresh_pair(seed: u64, config: EngineConfig) -> (SomService, Trainer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let som = BSom::new(BSomConfig::new(8, VECTOR_LEN), &mut rng);
    SomService::train_while_serve(som, TrainSchedule::new(8), &[], config)
}

/// The headline property: checkpoint at step 100 of 200, resume in a "new
/// process" (the original service and trainer dropped), finish the run, and
/// compare *everything observable* against an uninterrupted reference run.
#[test]
fn resume_continues_bit_identically_to_an_uninterrupted_run() {
    let path = temp_checkpoint("bit-identical");
    let stream = training_stream(0xC0FFEE, 200);
    let probes: Vec<BinaryVector> = {
        let mut rng = StdRng::seed_from_u64(0x9E37);
        (0..16)
            .map(|_| BinaryVector::random(VECTOR_LEN, &mut rng))
            .collect()
    };
    let config = EngineConfig::with_workers(2).with_publish_every_steps(7);

    // Reference: 200 steps straight through, recording every winner.
    let (reference_service, mut reference) = fresh_pair(0x5EED, config);
    let mut reference_winners = Vec::new();
    for (signature, label) in &stream {
        reference_winners.push(reference.feed(signature, *label).unwrap());
    }
    reference.publish();
    let reference_predictions = reference_service.recognizer().classify_batch(&probes);

    // Interrupted: same seed, 100 steps, checkpoint, drop the pair.
    let (service, mut trainer) = fresh_pair(0x5EED, config);
    let mut winners = Vec::new();
    for (signature, label) in &stream[..100] {
        winners.push(trainer.feed(signature, *label).unwrap());
    }
    let info = trainer.write_checkpoint(&path).unwrap();
    assert!(info.bytes > 0, "a checkpoint frame has content");
    assert_eq!(info.version, service.version());
    drop((service, trainer));

    // Resume and finish the run with the very same remaining stream.
    let (resumed_service, mut resumed) = SomService::resume_from_checkpoint(&path).unwrap();
    assert_eq!(resumed.steps_run(), 100);
    for (signature, label) in &stream[100..] {
        winners.push(resumed.feed(signature, *label).unwrap());
    }
    resumed.publish();
    let resumed_predictions = resumed_service.recognizer().classify_batch(&probes);

    // Winners (index + distance) step for step, the full map state (weights
    // and RNG stream position, via BSom's PartialEq), the `#`-count cache,
    // the step clocks and the served classifications all match.
    assert_eq!(winners.len(), reference_winners.len());
    for (step, (ours, theirs)) in winners.iter().zip(&reference_winners).enumerate() {
        assert_eq!(ours.index, theirs.index, "winner diverged at step {step}");
        assert_eq!(
            ours.distance, theirs.distance,
            "distance diverged at step {step}"
        );
    }
    assert_eq!(resumed.som(), reference.som(), "map state diverged");
    assert_eq!(
        resumed.som().dont_care_counts(),
        reference.som().dont_care_counts()
    );
    assert_eq!(resumed.steps_run(), reference.steps_run());
    assert_eq!(resumed_predictions, reference_predictions);

    std::fs::remove_file(&path).ok();
}

/// Snapshot versions stay monotone across the restart: the restored state is
/// published as `checkpointed version + 1`, and the publish cadence resumes
/// mid-count instead of restarting from zero.
#[test]
fn resume_publishes_the_next_version_and_keeps_the_publish_cadence() {
    let path = temp_checkpoint("version-continuity");
    let stream = training_stream(0xFEED, 12);
    let config = EngineConfig::with_workers(1).with_publish_every_steps(7);

    let (service, mut trainer) = fresh_pair(0xBEE, config);
    // 5 steps: below the cadence of 7, so still at version 1 with
    // steps_since_publish == 5 inside the checkpoint.
    for (signature, label) in &stream[..5] {
        trainer.feed(signature, *label).unwrap();
    }
    assert_eq!(service.version(), 1);
    let info = trainer.write_checkpoint(&path).unwrap();
    assert_eq!(info.version, 1);
    drop((service, trainer));

    let (resumed_service, mut resumed) = SomService::resume_from_checkpoint(&path).unwrap();
    assert_eq!(
        resumed_service.version(),
        2,
        "the restored state is published as checkpointed version + 1"
    );
    // Two more steps complete the cadence window of 7 (5 before the crash +
    // 2 after): the automatic publish fires exactly where an uninterrupted
    // run would have published.
    resumed.feed(&stream[5].0, stream[5].1).unwrap();
    assert_eq!(resumed_service.version(), 2, "cadence must not fire early");
    resumed.feed(&stream[6].0, stream[6].1).unwrap();
    assert_eq!(
        resumed_service.version(),
        3,
        "the publish cadence resumes mid-count after a restart"
    );

    std::fs::remove_file(&path).ok();
}

/// The restored service serves the checkpointed labelling immediately —
/// a recognizer created right after resume classifies without any further
/// training or publishing.
#[test]
fn resumed_service_serves_the_checkpointed_labelling_immediately() {
    let path = temp_checkpoint("immediate-serve");
    let stream = training_stream(0xAB1E, 60);
    let config = EngineConfig::with_workers(2);

    let (service, mut trainer) = fresh_pair(0xD1CE, config);
    for (signature, label) in &stream {
        trainer.feed(signature, *label).unwrap();
    }
    trainer.publish();
    let probes: Vec<BinaryVector> = stream.iter().take(10).map(|(s, _)| s.clone()).collect();
    let before = service.recognizer().classify_batch(&probes);
    trainer.write_checkpoint(&path).unwrap();
    drop((service, trainer));

    let (resumed_service, resumed) = SomService::resume_from_checkpoint(&path).unwrap();
    let after = resumed_service.recognizer().classify_batch(&probes);
    assert_eq!(before, after, "served labelling must survive the restart");
    assert!(!resumed.is_poisoned());

    std::fs::remove_file(&path).ok();
}

/// Missing file: a typed I/O error, never a panic.
#[test]
fn resume_from_a_missing_file_is_a_typed_io_error() {
    let path = temp_checkpoint("no-such-file");
    std::fs::remove_file(&path).ok();
    match SomService::resume_from_checkpoint(&path) {
        Err(CheckpointError::Io { .. }) => {}
        other => panic!("expected CheckpointError::Io, got {other:?}"),
    }
}

/// Overwriting a checkpoint is atomic at the API level: writing twice leaves
/// the newer state, and the temp file never survives a successful commit.
#[test]
fn checkpoint_overwrite_leaves_the_newest_state_and_no_temp_file() {
    let path = temp_checkpoint("overwrite");
    let stream = training_stream(0x0DD, 40);
    let config = EngineConfig::with_workers(1);

    let (_service, mut trainer) = fresh_pair(0xF00D, config);
    for (signature, label) in &stream[..20] {
        trainer.feed(signature, *label).unwrap();
    }
    trainer.write_checkpoint(&path).unwrap();
    for (signature, label) in &stream[20..] {
        trainer.feed(signature, *label).unwrap();
    }
    trainer.write_checkpoint(&path).unwrap();

    let temp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name().unwrap().to_string_lossy()
    ));
    assert!(
        !temp.exists(),
        "the temp file must not survive a committed write"
    );

    let (_resumed_service, resumed) = SomService::resume_from_checkpoint(&path).unwrap();
    assert_eq!(resumed.steps_run(), 40, "the newer checkpoint wins");
    assert_eq!(resumed.som(), trainer.som());

    std::fs::remove_file(&path).ok();
}
