//! Threaded registry stress: classify / feed / tick / evict from many
//! threads at once against one [`MapRegistry`], proving the facade's single
//! lock plus shared worker pool hold up — no deadlock, no panic, no lost
//! training work — while the LRU cap churns tenants through the spill
//! directory. The CI `registry` job runs this on both dispatch legs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bsom_engine::{EngineConfig, MapRegistry, RegistryConfig};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TENANTS: usize = 16;
const NEURONS: usize = 8;
const VECTOR_LEN: usize = 64;
const LABELS: usize = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bsom-registry-stress-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_registry(dir: &PathBuf, max_resident: usize) -> Arc<MapRegistry> {
    let mut config = RegistryConfig::new(EngineConfig::with_workers(2)).with_spill_dir(dir);
    if max_resident > 0 {
        config = config.with_max_resident(max_resident);
    }
    let registry = Arc::new(MapRegistry::new(config));
    let mut rng = StdRng::seed_from_u64(0x57E55);
    let seed_data: Vec<(BinaryVector, ObjectLabel)> = (0..6)
        .map(|i| {
            (
                BinaryVector::random(VECTOR_LEN, &mut rng),
                ObjectLabel::new(i % LABELS),
            )
        })
        .collect();
    for t in 0..TENANTS {
        let som = BSom::new(
            BSomConfig::new(NEURONS, VECTOR_LEN),
            &mut StdRng::seed_from_u64(t as u64),
        );
        registry
            .create_tenant(t as u64, som, TrainSchedule::new(usize::MAX), &seed_data)
            .unwrap();
    }
    registry
}

/// The main stress: 4 classifier threads, 2 feeder threads and a ticker
/// thread hammer 16 tenants concurrently. Every classify must succeed (no
/// tenant is ever unservable), and when the dust settles every queued
/// example must have become exactly one training step.
#[test]
fn concurrent_classify_feed_and_tick_lose_nothing() {
    let registry = build_registry(&temp_dir("main"), 0);
    let fed = Arc::new(AtomicU64::new(0));
    let feeding_done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    for worker in 0..4u64 {
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xC1A551F + worker);
            for _ in 0..200 {
                let tenant = rng.gen_range(0..TENANTS) as u64;
                let probes = vec![BinaryVector::random(VECTOR_LEN, &mut rng)];
                let predictions = registry.classify(tenant, probes).unwrap();
                assert_eq!(predictions.len(), 1);
            }
        }));
    }
    for worker in 0..2u64 {
        let registry = Arc::clone(&registry);
        let fed = Arc::clone(&fed);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xFEED + worker);
            for _ in 0..300 {
                let tenant = rng.gen_range(0..TENANTS) as u64;
                let signature = BinaryVector::random(VECTOR_LEN, &mut rng);
                let label = ObjectLabel::new(rng.gen_range(0..LABELS));
                registry.feed(tenant, &signature, label).unwrap();
                fed.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    {
        let registry = Arc::clone(&registry);
        let feeding_done = Arc::clone(&feeding_done);
        handles.push(std::thread::spawn(move || loop {
            let report = registry.train_tick(64);
            assert!(report.failures.is_empty(), "{report:?}");
            if report.steps == 0 && feeding_done.load(Ordering::Acquire) {
                break;
            }
            std::thread::yield_now();
        }));
    }

    // Feeders and classifiers come down first, then the ticker drains what
    // is left and exits.
    let ticker = handles.pop().unwrap();
    for handle in handles {
        handle.join().unwrap();
    }
    feeding_done.store(true, Ordering::Release);
    ticker.join().unwrap();

    let stats = registry.stats();
    assert_eq!(stats.tenants, TENANTS);
    assert_eq!(stats.pending_steps, 0, "queued examples were lost");
    assert_eq!(
        stats.steps_total,
        fed.load(Ordering::Relaxed),
        "steps != feeds"
    );
    let health = registry.health();
    assert_eq!(health.workers_alive, health.workers_configured);
    for t in 0..TENANTS {
        assert!(!registry.is_poisoned(t as u64).unwrap());
        assert!(registry.version(t as u64).unwrap() >= 1);
    }
}

/// Same shape with a tight residency cap: the eviction machinery churns
/// tenants to disk *while* other threads classify and feed them, and
/// nothing is lost or left unservable.
#[test]
fn concurrent_traffic_under_lru_churn_stays_consistent() {
    let registry = build_registry(&temp_dir("churn"), 4);
    let fed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();

    for worker in 0..3u64 {
        let registry = Arc::clone(&registry);
        let fed = Arc::clone(&fed);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xD15C + worker);
            for step in 0..150 {
                let tenant = rng.gen_range(0..TENANTS) as u64;
                match step % 3 {
                    0 => {
                        let probes = vec![BinaryVector::random(VECTOR_LEN, &mut rng)];
                        registry.classify(tenant, probes).unwrap();
                    }
                    1 => {
                        let signature = BinaryVector::random(VECTOR_LEN, &mut rng);
                        registry
                            .feed(
                                tenant,
                                &signature,
                                ObjectLabel::new(rng.gen_range(0..LABELS)),
                            )
                            .unwrap();
                        fed.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        let report = registry.train_tick(32);
                        assert!(report.failures.is_empty(), "{report:?}");
                    }
                }
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    // Drain the backlog, then check the books balance.
    loop {
        let report = registry.train_tick(u64::MAX);
        assert!(report.failures.is_empty(), "{report:?}");
        if report.steps == 0 {
            break;
        }
    }
    let stats = registry.stats();
    assert_eq!(stats.pending_steps, 0);
    assert_eq!(stats.steps_total, fed.load(Ordering::Relaxed));
    assert!(stats.evictions_total > 0, "the cap never churned anything");
    assert!(stats.resident <= 4, "residency cap violated at rest");
    for t in 0..TENANTS {
        let predictions = registry
            .classify(
                t as u64,
                vec![BinaryVector::random(
                    VECTOR_LEN,
                    &mut StdRng::seed_from_u64(t as u64),
                )],
            )
            .unwrap();
        assert_eq!(predictions.len(), 1);
    }
}
