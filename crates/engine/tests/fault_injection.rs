//! Deterministic fault-injection harness (requires `--features
//! fault-injection`).
//!
//! Exercises every failure path of the fault model in DESIGN.md §"Fault
//! model and recovery" through the named failpoints of
//! [`bsom_engine::faultpoint`]:
//!
//! * a worker panicking mid-job is contained — the batch still returns
//!   bit-identical predictions, the supervisor respawns the worker, and
//!   [`ServiceHealth`] records the panic and the respawn;
//! * a checkpoint torn between temp-file write and atomic rename leaves
//!   the previous checkpoint intact; a frame truncated at **every** byte
//!   offset, or bit-flipped per a seeded [`FaultPlan`], is rejected with a
//!   typed error;
//! * a saturated bounded queue sheds load with [`EngineError::Overloaded`]
//!   and recovers;
//! * a panic while publishing (snapshot lock held) leaves the old snapshot
//!   serving and the next publish succeeds;
//! * a panic inside a training step poisons the trainer
//!   ([`EngineError::TrainerPanicked`] then [`TrainerPoisoned`]) while the
//!   service keeps serving, and a checkpoint resume recovers.
//!
//! The failpoint registry is process-global, so every test takes
//! [`harness`] — one mutex that serializes the suite and resets the
//! registry on entry and on drop (also on panic). CI additionally runs
//! this binary with `--test-threads=1`.
//!
//! [`TrainerPoisoned`]: EngineError::TrainerPoisoned

#![cfg(feature = "fault-injection")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bsom_engine::faultpoint::{arm_panic, arm_sleep, hit_count, reset, FaultPlan};
use bsom_engine::{EngineConfig, EngineError, ServiceHealth, SomService, Trainer};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VECTOR_LEN: usize = 80;

/// Serializes the suite around the process-global failpoint registry and
/// guarantees a clean registry on both entry and exit (even when the test
/// body panics: the reset runs in `Drop`).
fn harness() -> HarnessGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    // A failed test poisons the lock; the registry reset below restores the
    // shared state the lock actually protects.
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    HarnessGuard { _guard: guard }
}

struct HarnessGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for HarnessGuard {
    fn drop(&mut self) {
        reset();
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bsom-fault-injection-{}-{tag}.ckpt",
        std::process::id()
    ))
}

fn training_stream(seed: u64, steps: usize) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|i| {
            (
                BinaryVector::random(VECTOR_LEN, &mut rng),
                ObjectLabel::new(i % 3),
            )
        })
        .collect()
}

fn probes(seed: u64, count: usize) -> Vec<BinaryVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| BinaryVector::random(VECTOR_LEN, &mut rng))
        .collect()
}

fn trained_pair(seed: u64, config: EngineConfig) -> (SomService, Trainer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let som = BSom::new(BSomConfig::new(8, VECTOR_LEN), &mut rng);
    let (service, mut trainer) =
        SomService::train_while_serve(som, TrainSchedule::new(8), &[], config);
    for (signature, label) in &training_stream(seed ^ 0xA5A5, 40) {
        trainer.feed(signature, *label).unwrap();
    }
    trainer.publish();
    (service, trainer)
}

fn wait_for(timeout: Duration, mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if condition() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    condition()
}

/// Acceptance (a): a worker killed mid-job is invisible to the caller —
/// the batch completes with bit-identical predictions (the collector
/// recomputes the lost shard inline) — and the supervisor respawns the
/// worker, all of it visible in [`ServiceHealth`].
#[test]
fn worker_panic_is_contained_respawned_and_bit_identical() {
    let _harness = harness();
    let (service, _trainer) = trained_pair(0x11, EngineConfig::with_workers(2));
    let batch = probes(0x22, 12);
    let mut recognizer = service.recognizer();

    // Fault-free reference pass (counts worker.job hits: one per shard).
    let reference = recognizer.classify_batch(&batch);
    let healthy = service.health();
    assert_eq!(healthy.workers_configured, 2);
    assert_eq!(healthy.worker_panics, 0);
    assert_eq!(healthy.last_panic, None);

    // Kill the worker that picks up the faulted batch's first shard.
    arm_panic("worker.job", hit_count("worker.job"));
    let under_fault = recognizer.classify_batch(&batch);
    assert_eq!(
        under_fault, reference,
        "a shard lost to a worker panic must be recomputed bit-identically"
    );

    // The supervisor respawns the dead worker (2 ms backoff on the first
    // panic) and the health counters record the whole episode.
    assert!(
        wait_for(Duration::from_secs(5), || {
            let health = service.health();
            health.worker_respawns >= 1 && health.workers_alive == 2
        }),
        "supervisor must respawn the crashed worker, health: {:?}",
        service.health()
    );
    let health: ServiceHealth = service.health();
    assert_eq!(health.worker_panics, 1);
    assert!(
        health
            .last_panic
            .as_deref()
            .is_some_and(|message| message.contains("worker.job")),
        "last_panic must carry the panic message, got {:?}",
        health.last_panic
    );

    // Post-recovery classifies still match the reference.
    let recovered = recognizer.classify_batch(&batch);
    assert_eq!(recovered, reference);
}

/// Acceptance (b): a checkpoint frame truncated at **every** byte offset
/// fails to load with a typed error, and so do seeded-plan bit flips.
#[test]
fn torn_checkpoints_at_every_offset_and_seeded_bit_flips_are_rejected() {
    let _harness = harness();
    let path = temp_path("torn-frame");
    let (_service, trainer) = trained_pair(0x33, EngineConfig::with_workers(1));
    trainer.write_checkpoint(&path).unwrap();
    let frame = std::fs::read(&path).unwrap();

    let torn_path = temp_path("torn-frame-cut");
    for keep in 0..frame.len() {
        std::fs::write(&torn_path, &frame[..keep]).unwrap();
        assert!(
            SomService::resume_from_checkpoint(&torn_path).is_err(),
            "a frame torn at byte {keep} of {} must be rejected",
            frame.len()
        );
    }

    // Bit flips chosen by a seeded fault plan: the whole scenario replays
    // from one u64.
    let mut plan = FaultPlan::seeded(0xB1F_F11D);
    for _ in 0..64 {
        let offset = plan.next_below(frame.len() as u64) as usize;
        let bit = plan.next_below(8) as u8;
        let mut corrupted = frame.clone();
        corrupted[offset] ^= 1 << bit;
        std::fs::write(&torn_path, &corrupted).unwrap();
        assert!(
            SomService::resume_from_checkpoint(&torn_path).is_err(),
            "flipping bit {bit} of byte {offset} must be rejected"
        );
    }

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&torn_path).ok();
}

/// A crash between the temp-file write and the atomic rename (the
/// `checkpoint.write` failpoint sits exactly there) leaves the **previous**
/// checkpoint intact and loadable — the commit is all-or-nothing.
#[test]
fn a_crash_between_write_and_rename_preserves_the_previous_checkpoint() {
    let _harness = harness();
    let path = temp_path("write-tear");
    let stream = training_stream(0x44, 60);
    let (_service, mut trainer) = trained_pair(0x44, EngineConfig::with_workers(1));
    let steps_at_first_checkpoint = trainer.steps_run();
    trainer.write_checkpoint(&path).unwrap();

    for (signature, label) in &stream {
        trainer.feed(signature, *label).unwrap();
    }

    // The second write dies after the temp file is written but before the
    // rename commits it.
    arm_panic("checkpoint.write", hit_count("checkpoint.write"));
    let torn = catch_unwind(AssertUnwindSafe(|| trainer.write_checkpoint(&path)));
    assert!(torn.is_err(), "the injected tear must surface as a panic");

    // `path` still holds the first checkpoint, whole and valid.
    let (_resumed_service, resumed) = SomService::resume_from_checkpoint(&path)
        .expect("the previous checkpoint must survive a torn successor");
    assert_eq!(resumed.steps_run(), steps_at_first_checkpoint);

    // With the failpoint consumed, the retry commits the newer state.
    trainer.write_checkpoint(&path).unwrap();
    let (_newer_service, newer) = SomService::resume_from_checkpoint(&path).unwrap();
    assert_eq!(newer.steps_run(), trainer.steps_run());
    assert_eq!(newer.som(), trainer.som());

    std::fs::remove_file(&path).ok();
}

/// Acceptance (d): with one worker parked inside a job (`arm_sleep`) and the
/// queue bounded at one slot, a shedding classify returns
/// [`EngineError::Overloaded`] carrying the live queue figures — and once
/// the stall clears, the same call succeeds and the health gauges drop back
/// to idle.
#[test]
fn saturation_sheds_load_with_overloaded_and_recovers() {
    let _harness = harness();
    let (service, _trainer) =
        trained_pair(0x55, EngineConfig::with_workers(1).with_queue_capacity(1));
    let batch = probes(0x66, 6);
    let reference = service.recognizer().classify_batch(&batch);

    // Park the worker inside the next job for long enough to saturate.
    arm_sleep(
        "worker.job",
        hit_count("worker.job"),
        Duration::from_millis(1500),
    );
    let sleeper = {
        let mut recognizer = service.recognizer();
        let batch = batch.clone();
        std::thread::spawn(move || recognizer.classify_batch(&batch))
    };
    assert!(
        wait_for(Duration::from_secs(5), || service.health().workers_alive
            == 1
            && service.health().queue_depth == 0
            && hit_count("worker.job") >= 1),
        "the stalled job must be picked up first"
    );

    // A second blocking batch occupies the single queue slot.
    let queued = {
        let mut recognizer = service.recognizer();
        let batch = batch.clone();
        std::thread::spawn(move || recognizer.classify_batch(&batch))
    };
    assert!(
        wait_for(Duration::from_secs(5), || service.health().queue_depth >= 1),
        "the second batch must be waiting in the queue"
    );

    // Shedding admission: the queue is full, so the batch is refused
    // immediately with the live figures instead of blocking.
    let mut recognizer = service.recognizer();
    match recognizer.try_classify_batch(&batch) {
        Err(EngineError::Overloaded {
            queue_capacity,
            queue_depth,
        }) => {
            assert_eq!(queue_capacity, 1);
            assert!(queue_depth >= 1, "depth gauge must show the waiting job");
        }
        other => panic!("expected Overloaded under saturation, got {other:?}"),
    }

    // Both blocked batches complete untouched once the stall clears…
    assert_eq!(sleeper.join().expect("sleeper panicked"), reference);
    assert_eq!(queued.join().expect("queued batch panicked"), reference);

    // …and the shed caller simply retries successfully.
    assert_eq!(recognizer.try_classify_batch(&batch).unwrap(), reference);
    let health = service.health();
    assert_eq!(health.queue_depth, 0);
    assert_eq!(health.worker_panics, 0);
}

/// A panic while the snapshot lock is held mid-publish (the
/// `service.publish` failpoint) must not tear the served snapshot: readers
/// keep the old version, the lock's poisoning is recovered, and the next
/// publish goes through.
#[test]
fn a_panic_mid_publish_keeps_the_old_snapshot_and_recovers() {
    let _harness = harness();
    let (service, mut trainer) = trained_pair(0x77, EngineConfig::with_workers(2));
    let batch = probes(0x88, 8);
    let mut recognizer = service.recognizer();
    let before_version = service.version();
    let before = recognizer.classify_batch(&batch);

    arm_panic("service.publish", hit_count("service.publish"));
    let torn = catch_unwind(AssertUnwindSafe(|| trainer.publish()));
    assert!(torn.is_err(), "the injected publish tear must surface");

    // Readers are untouched: same version, same predictions.
    assert_eq!(service.version(), before_version);
    assert_eq!(recognizer.classify_batch(&batch), before);

    // The next publish recovers the poisoned snapshot lock and lands.
    let version = trainer.publish();
    assert_eq!(version, before_version + 1);
    assert_eq!(service.version(), version);
    assert_eq!(recognizer.classify_batch(&batch), before);
}

/// A panic inside a training step is contained by [`Trainer::try_feed`]:
/// the step reports [`EngineError::TrainerPanicked`], the trainer poisons
/// itself (the map may hold a half-applied update), the service keeps
/// serving its last snapshot — and resuming from the last checkpoint
/// restores a healthy trainer.
#[test]
fn a_trainer_panic_poisons_the_trainer_but_not_the_service() {
    let _harness = harness();
    let path = temp_path("trainer-poison");
    let (service, mut trainer) = trained_pair(0x99, EngineConfig::with_workers(2));
    let batch = probes(0xAA, 8);
    let before = service.recognizer().classify_batch(&batch);
    trainer.write_checkpoint(&path).unwrap();
    let stream = training_stream(0xBB, 4);

    arm_panic("trainer.feed", hit_count("trainer.feed"));
    match trainer.try_feed(&stream[0].0, stream[0].1) {
        Err(EngineError::TrainerPanicked { message }) => {
            assert!(
                message.contains("trainer.feed"),
                "the contained panic carries its message, got {message:?}"
            );
        }
        other => panic!("expected TrainerPanicked, got {other:?}"),
    }
    assert!(trainer.is_poisoned());
    match trainer.try_feed(&stream[1].0, stream[1].1) {
        Err(EngineError::TrainerPoisoned) => {}
        other => panic!("expected TrainerPoisoned, got {other:?}"),
    }

    // The serving side never noticed.
    assert_eq!(service.recognizer().classify_batch(&batch), before);

    // Recovery path: resume the pair from the checkpoint written before the
    // crash and train on.
    let (resumed_service, mut resumed) = SomService::resume_from_checkpoint(&path).unwrap();
    assert!(!resumed.is_poisoned());
    for (signature, label) in &stream {
        resumed.try_feed(signature, *label).unwrap();
    }
    resumed.publish();
    assert_eq!(
        resumed_service.recognizer().classify_batch(&batch).len(),
        batch.len()
    );

    std::fs::remove_file(&path).ok();
}
