//! Property suite: **corrupted checkpoints are rejected with a typed error,
//! never a panic and never a silently-wrong map.**
//!
//! A checkpoint frame is length-prefixed and FNV-1a-checksummed (DESIGN.md
//! §"Fault model and recovery"), so any single bit flip and any truncation
//! must surface as a [`CheckpointError`] from
//! [`SomService::resume_from_checkpoint`]. proptest treats a panic inside
//! the closure as a failure, so these properties also prove the decode path
//! is panic-free on adversarial input.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use bsom_engine::{EngineConfig, SomService};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One pristine checkpoint frame, built once: spawning a service per proptest
/// case would fork worker threads hundreds of times for no extra coverage.
fn pristine_frame() -> &'static [u8] {
    static FRAME: OnceLock<Vec<u8>> = OnceLock::new();
    FRAME.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let som = BSom::new(BSomConfig::new(6, 72), &mut rng);
        let (_service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(4),
            &[],
            EngineConfig::with_workers(1),
        );
        for step in 0..30 {
            let signature = BinaryVector::random(72, &mut rng);
            trainer
                .feed(&signature, ObjectLabel::new(step % 3))
                .unwrap();
        }
        trainer.publish();
        let path = scratch_path();
        trainer.write_checkpoint(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            bytes.len() > 28,
            "frame must be header + payload + checksum"
        );
        bytes
    })
}

/// A fresh scratch file per call, so parallel proptest cases never collide.
fn scratch_path() -> PathBuf {
    static SERIAL: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "bsom-checkpoint-corruption-{}-{}.ckpt",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Writes `bytes` to a scratch file and attempts a resume; hands back the
/// result and cleans the file up. Panics inside `resume_from_checkpoint`
/// propagate and fail the proptest case — that is the point.
fn resume_bytes(bytes: &[u8]) -> Result<(), bsom_engine::CheckpointError> {
    let path = scratch_path();
    std::fs::write(&path, bytes).unwrap();
    let outcome = SomService::resume_from_checkpoint(&path).map(drop);
    std::fs::remove_file(&path).ok();
    outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single bit flip anywhere in the frame — header, payload or
    /// checksum — is rejected with a typed error.
    #[test]
    fn a_single_bit_flip_anywhere_is_rejected(position in any::<usize>(), bit in 0u8..8) {
        let mut bytes = pristine_frame().to_vec();
        let offset = position % bytes.len();
        bytes[offset] ^= 1 << bit;
        let outcome = resume_bytes(&bytes);
        prop_assert!(
            outcome.is_err(),
            "flipping bit {bit} of byte {offset} must not load"
        );
    }

    /// Any truncation — from an empty file up to one byte short — is
    /// rejected with a typed error.
    #[test]
    fn any_truncation_is_rejected(position in any::<usize>()) {
        let frame = pristine_frame();
        let keep = position % frame.len(); // 0..len, never the full frame
        let outcome = resume_bytes(&frame[..keep]);
        prop_assert!(outcome.is_err(), "a frame cut to {keep} bytes must not load");
    }

    /// Appending garbage after a valid frame is rejected (`TrailingBytes`):
    /// a concatenated or doubly-written file never half-loads.
    #[test]
    fn trailing_garbage_is_rejected(extra in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut bytes = pristine_frame().to_vec();
        bytes.extend_from_slice(&extra);
        let outcome = resume_bytes(&bytes);
        prop_assert!(outcome.is_err(), "trailing bytes must not load");
    }

    /// Arbitrary byte soup — no structure at all — is rejected without a
    /// panic.
    #[test]
    fn random_bytes_are_rejected(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let outcome = resume_bytes(&bytes);
        prop_assert!(outcome.is_err(), "random bytes must not load as a checkpoint");
    }
}

/// Sanity anchor for the properties above: the pristine frame itself *does*
/// load. (If this fails, the corruption properties would pass vacuously.)
#[test]
fn the_pristine_frame_loads() {
    resume_bytes(pristine_frame()).expect("the uncorrupted frame must load");
}
