//! The differential tenant-isolation tier: every tenant behind
//! [`MapRegistry`] must be **bit-identical** to a standalone [`SomService`]
//! fed the same per-tenant schedule — weights, `#`-counts, RNG stream,
//! snapshot versions and classify outputs — no matter how the registry
//! interleaves the tenants, and across evict→reload round trips.
//!
//! The reference harness exploits two facts:
//!
//! * Tenants are independent: the global interleaving of feeds is
//!   irrelevant as long as each tenant sees its own examples in FIFO order.
//! * With [`EngineConfig::publish_every_steps`] unset (the default), a
//!   trainer only publishes when told to; `train_tick` publishes exactly
//!   once per tenant that trained, at tick end. So the reference mirrors a
//!   flushed tick with "feed everything, then one explicit `publish()`".

use std::path::PathBuf;

use bsom_engine::{EngineConfig, EngineError, MapRegistry, RegistryConfig, SomService, Trainer};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NEURONS: usize = 12;
const VECTOR_LEN: usize = 96;
const LABELS: usize = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bsom-tenant-isolation-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_som(seed: u64) -> BSom {
    BSom::new(
        BSomConfig::new(NEURONS, VECTOR_LEN),
        &mut StdRng::seed_from_u64(seed),
    )
}

/// A labelled stream that is deterministic per (seed, length) so the
/// registry side and the reference side replay identical examples.
fn stream(seed: u64, steps: usize) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|_| {
            let label = ObjectLabel::new(rng.gen_range(0..LABELS));
            (BinaryVector::random(VECTOR_LEN, &mut rng), label)
        })
        .collect()
}

fn engine_config() -> EngineConfig {
    // publish_every_steps stays None: publishes happen only at tick end
    // (registry) / via explicit publish() (reference).
    EngineConfig::with_workers(2)
}

/// One standalone train-while-serve pair — the ground truth a registry
/// tenant is diffed against.
struct Reference {
    service: SomService,
    trainer: Trainer,
}

impl Reference {
    fn new(seed: u64, seed_data: &[(BinaryVector, ObjectLabel)]) -> Reference {
        let (service, trainer) = SomService::train_while_serve(
            make_som(seed),
            TrainSchedule::new(usize::MAX),
            seed_data,
            engine_config(),
        );
        Reference { service, trainer }
    }

    /// Mirrors one flushed registry tick: feed the whole round FIFO, then
    /// publish exactly once (only if something was fed — `train_tick` never
    /// publishes a tenant that trained zero steps).
    fn mirror_tick(&mut self, round: &[(BinaryVector, ObjectLabel)]) {
        for (signature, label) in round {
            self.trainer.feed(signature, *label).unwrap();
        }
        if !round.is_empty() {
            self.trainer.publish();
        }
    }
}

/// The full bit-identity check for one tenant: map equality (weights,
/// config and RNG stream via `BSom: PartialEq`), the packed `#`-count
/// sidecar, the published snapshot version, and classify outputs through
/// the serving path.
fn assert_tenant_matches(
    registry: &MapRegistry,
    id: &str,
    reference: &Reference,
    probes: &[BinaryVector],
    context: &str,
) {
    let som = registry.tenant_som(id).unwrap();
    assert_eq!(
        &som,
        reference.trainer.som(),
        "{context}: tenant {id} diverged from its standalone reference"
    );
    assert_eq!(
        som.dont_care_counts(),
        reference.trainer.som().dont_care_counts(),
        "{context}: tenant {id} #-count sidecar diverged"
    );
    assert_eq!(
        registry.version(id).unwrap(),
        reference.service.version(),
        "{context}: tenant {id} snapshot version diverged"
    );
    let registry_predictions = registry.classify(id, probes).unwrap();
    let reference_predictions = reference
        .service
        .classify_pinned(&reference.service.snapshot(), probes);
    assert_eq!(
        registry_predictions, reference_predictions,
        "{context}: tenant {id} classify outputs diverged"
    );
}

/// The core differential: four tenants, feeds interleaved in a shuffled
/// global order across several ticks, diffed against standalone services
/// after every tick.
#[test]
fn interleaved_schedule_is_bit_identical_to_standalone_services() {
    const TENANTS: usize = 4;
    const ROUNDS: usize = 5;
    let seed_data = stream(0xC0FFEE, 8);
    let probes: Vec<BinaryVector> = stream(0xBEEF, 6).into_iter().map(|(v, _)| v).collect();

    let registry = MapRegistry::new(RegistryConfig::new(engine_config()));
    let mut references = Vec::new();
    for t in 0..TENANTS {
        let seed = 100 + t as u64;
        registry
            .create_tenant(
                format!("tenant-{t}"),
                make_som(seed),
                TrainSchedule::new(usize::MAX),
                &seed_data,
            )
            .unwrap();
        references.push(Reference::new(seed, &seed_data));
    }

    let mut order_rng = StdRng::seed_from_u64(0x0DDBA11);
    let mut streams: Vec<_> = (0..TENANTS)
        .map(|t| stream(7_000 + t as u64, ROUNDS * 9).into_iter())
        .collect();

    for round in 0..ROUNDS {
        // Interleave this round's feeds in a shuffled global order; tenant 3
        // sits out every other round so ticks see uneven participation.
        let mut rounds: Vec<Vec<(BinaryVector, ObjectLabel)>> = vec![Vec::new(); TENANTS];
        let mut slots: Vec<usize> = (0..TENANTS)
            .filter(|&t| t != 3 || round % 2 == 0)
            .flat_map(|t| std::iter::repeat_n(t, 3 + t))
            .collect();
        for i in (1..slots.len()).rev() {
            slots.swap(i, order_rng.gen_range(0..=i));
        }
        for t in slots {
            let (signature, label) = streams[t].next().unwrap();
            registry
                .feed(format!("tenant-{t}"), &signature, label)
                .unwrap();
            rounds[t].push((signature, label));
        }

        // A budget far above the pending total flushes every tenant, so the
        // reference "feed all, publish once" mirror is exact.
        let report = registry.train_tick(u64::MAX);
        assert!(report.failures.is_empty(), "round {round}: {report:?}");
        let fed: u64 = rounds.iter().map(|r| r.len() as u64).sum();
        assert_eq!(report.steps, fed, "round {round} did not flush");

        for (t, reference) in references.iter_mut().enumerate() {
            reference.mirror_tick(&rounds[t]);
            assert_tenant_matches(
                &registry,
                &format!("tenant-{t}"),
                reference,
                &probes,
                &format!("after round {round}"),
            );
        }
    }

    let stats = registry.stats();
    assert_eq!(stats.tenants, TENANTS);
    assert_eq!(stats.resident, TENANTS);
    assert_eq!(stats.pending_steps, 0);
}

/// Evict→reload round trips must be invisible to the differential: a tenant
/// spilled to disk and transparently reloaded on its next tick stays
/// bit-identical to a reference that never left memory, including version
/// continuity (reload resumes at the checkpointed version, publishes
/// continue from there).
#[test]
fn evict_reload_round_trip_is_bit_identical_and_version_continuous() {
    let dir = temp_dir("roundtrip");
    let seed_data = stream(0x5EED, 8);
    let probes: Vec<BinaryVector> = stream(0x9999, 4).into_iter().map(|(v, _)| v).collect();

    let registry = MapRegistry::new(RegistryConfig::new(engine_config()).with_spill_dir(&dir));
    registry
        .create_tenant(
            "hot",
            make_som(1),
            TrainSchedule::new(usize::MAX),
            &seed_data,
        )
        .unwrap();
    registry
        .create_tenant(
            "cold",
            make_som(2),
            TrainSchedule::new(usize::MAX),
            &seed_data,
        )
        .unwrap();
    let mut hot = Reference::new(1, &seed_data);
    let mut cold = Reference::new(2, &seed_data);

    // Round 1: both train, then "cold" is evicted to disk.
    let round1_hot = stream(11, 7);
    let round1_cold = stream(12, 5);
    for (signature, label) in &round1_hot {
        registry.feed("hot", signature, *label).unwrap();
    }
    for (signature, label) in &round1_cold {
        registry.feed("cold", signature, *label).unwrap();
    }
    registry.train_tick(u64::MAX);
    hot.mirror_tick(&round1_hot);
    cold.mirror_tick(&round1_cold);

    registry.evict("cold").unwrap();
    assert!(!registry.is_resident("cold").unwrap());
    // Version is still readable while evicted (served from the spill frame).
    let version_while_evicted = registry.version("cold").unwrap();
    assert_eq!(version_while_evicted, cold.service.version());
    // So is the map itself — `tenant_som` transparently reloads.
    assert_eq!(&registry.tenant_som("cold").unwrap(), cold.trainer.som());

    // Feeding an evicted tenant queues work; the next tick reloads it.
    registry.evict("cold").unwrap();
    let round2_cold = stream(13, 6);
    for (signature, label) in &round2_cold {
        registry.feed("cold", signature, *label).unwrap();
    }
    assert!(!registry.is_resident("cold").unwrap());
    let report = registry.train_tick(u64::MAX);
    assert!(report.failures.is_empty(), "{report:?}");
    assert!(report.reloads >= 1, "tick must have reloaded `cold`");
    assert!(registry.is_resident("cold").unwrap());
    cold.mirror_tick(&round2_cold);

    assert_tenant_matches(&registry, "cold", &cold, &probes, "after evict→reload");
    assert_tenant_matches(&registry, "hot", &hot, &probes, "hot bystander");
    assert_eq!(
        registry.version("cold").unwrap(),
        version_while_evicted + 1,
        "exactly one publish since the evicted checkpoint"
    );

    // Classify against an evicted tenant also round-trips transparently.
    registry.evict("cold").unwrap();
    let evicted_predictions = registry.classify("cold", &probes).unwrap();
    let reference_predictions = cold
        .service
        .classify_pinned(&cold.service.snapshot(), &probes);
    assert_eq!(evicted_predictions, reference_predictions);

    let stats = registry.stats();
    assert!(stats.evictions_total >= 3);
    assert!(stats.reloads_total >= 2);
}

/// LRU residency enforcement under a tight `max_resident` cap must not
/// perturb any tenant: with room for only 2 of 5 tenants, several rounds of
/// skewed traffic (tenant 0 hot, the rest cold) still leave every tenant
/// bit-identical to its never-evicted reference.
#[test]
fn lru_thrashing_under_max_resident_preserves_bit_identity() {
    const TENANTS: usize = 5;
    let dir = temp_dir("lru");
    let seed_data = stream(0xFACE, 6);
    let probes: Vec<BinaryVector> = stream(0x7777, 4).into_iter().map(|(v, _)| v).collect();

    let registry = MapRegistry::new(
        RegistryConfig::new(engine_config())
            .with_spill_dir(&dir)
            .with_max_resident(2),
    );
    let mut references = Vec::new();
    for t in 0..TENANTS {
        let seed = 500 + t as u64;
        registry
            .create_tenant(
                format!("tenant-{t}"),
                make_som(seed),
                TrainSchedule::new(usize::MAX),
                &seed_data,
            )
            .unwrap();
        references.push(Reference::new(seed, &seed_data));
    }
    assert!(registry.stats().resident <= 2);

    let mut streams: Vec<_> = (0..TENANTS)
        .map(|t| stream(9_000 + t as u64, 64).into_iter())
        .collect();
    for round in 0..4 {
        let mut rounds: Vec<Vec<(BinaryVector, ObjectLabel)>> = vec![Vec::new(); TENANTS];
        // Skew: tenant 0 feeds every round, tenant `1 + round % 4` rotates in.
        for t in [0, 1 + round % (TENANTS - 1)] {
            for _ in 0..4 {
                let (signature, label) = streams[t].next().unwrap();
                registry
                    .feed(format!("tenant-{t}"), &signature, label)
                    .unwrap();
                rounds[t].push((signature, label));
            }
        }
        let report = registry.train_tick(u64::MAX);
        assert!(report.failures.is_empty(), "round {round}: {report:?}");
        for (t, reference) in references.iter_mut().enumerate() {
            reference.mirror_tick(&rounds[t]);
        }
        assert!(
            registry.stats().resident <= 2,
            "round {round}: residency cap violated"
        );
    }

    for (t, reference) in references.iter().enumerate() {
        assert_tenant_matches(
            &registry,
            &format!("tenant-{t}"),
            reference,
            &probes,
            "after LRU thrash",
        );
    }
    assert!(registry.stats().evictions_total > 0, "cap never evicted");
}

/// RNG-stream isolation: training one tenant hard must leave an untouched
/// sibling's map — including its private RNG state — bit-identical to a
/// reference that also saw zero feeds.
#[test]
fn untouched_tenants_share_nothing_with_trained_neighbours() {
    let seed_data = stream(0xAB, 6);
    let registry = MapRegistry::new(RegistryConfig::new(engine_config()));
    registry
        .create_tenant(
            "busy",
            make_som(21),
            TrainSchedule::new(usize::MAX),
            &seed_data,
        )
        .unwrap();
    registry
        .create_tenant(
            "idle",
            make_som(22),
            TrainSchedule::new(usize::MAX),
            &seed_data,
        )
        .unwrap();
    let idle_reference = Reference::new(22, &seed_data);

    for (signature, label) in stream(77, 120) {
        registry.feed("busy", &signature, label).unwrap();
    }
    let report = registry.train_tick(u64::MAX);
    assert_eq!(report.steps, 120);
    assert_eq!(report.tenants_trained, 1);

    assert_eq!(
        &registry.tenant_som("idle").unwrap(),
        idle_reference.trainer.som()
    );
    assert_eq!(
        registry.version("idle").unwrap(),
        idle_reference.service.version()
    );
    assert_eq!(
        registry.version("idle").unwrap(),
        1,
        "idle tenant never republished"
    );
}

/// The fair scheduler spreads a small step budget round-robin: no tenant
/// starves, leftover pending work carries to the next tick, and the final
/// state is *still* bit-identical to the references (budgeted ticks change
/// publish cadence but never per-tenant feed order). Versions advance once
/// per tick a tenant trained in.
#[test]
fn budgeted_ticks_are_fair_and_still_bit_identical_at_the_end() {
    const TENANTS: usize = 3;
    const PER_TENANT: usize = 10;
    let registry = MapRegistry::new(RegistryConfig::new(engine_config()));
    let mut references = Vec::new();
    let mut streams = Vec::new();
    for t in 0..TENANTS {
        let seed = 300 + t as u64;
        registry
            .create_tenant(
                format!("tenant-{t}"),
                make_som(seed),
                TrainSchedule::new(usize::MAX),
                &[],
            )
            .unwrap();
        references.push(Reference::new(seed, &[]));
        let examples = stream(4_000 + t as u64, PER_TENANT);
        for (signature, label) in &examples {
            registry
                .feed(format!("tenant-{t}"), signature, *label)
                .unwrap();
        }
        streams.push(examples);
    }

    // Budget of 6 over 3 tenants with 10 pending each: the fair scheduler
    // gives every tenant exactly 2 steps per tick, for 5 ticks.
    let mut ticks = 0;
    let mut mirrored = [0usize; TENANTS];
    loop {
        let report = registry.train_tick(6);
        if report.steps == 0 {
            break;
        }
        ticks += 1;
        assert!(ticks <= 5, "budget arithmetic drifted");
        assert_eq!(report.steps, 6, "tick {ticks} under-used its budget");
        assert_eq!(
            report.tenants_trained, TENANTS,
            "tick {ticks} starved a tenant"
        );
        for (t, reference) in references.iter_mut().enumerate() {
            let fed = &streams[t][mirrored[t]..mirrored[t] + 2];
            reference.mirror_tick(fed);
            mirrored[t] += 2;
        }
    }
    assert_eq!(ticks, 5);
    assert_eq!(registry.stats().pending_steps, 0);

    let probes: Vec<BinaryVector> = stream(0x1111, 4).into_iter().map(|(v, _)| v).collect();
    for (t, reference) in references.iter().enumerate() {
        assert_tenant_matches(
            &registry,
            &format!("tenant-{t}"),
            reference,
            &probes,
            "after budgeted ticks",
        );
        // 5 ticks × one publish each on top of the initial v1.
        assert_eq!(registry.version(format!("tenant-{t}")).unwrap(), 6);
    }
}

/// `drain_tenant` flushes exactly the tenant's pending queue and reports
/// the published version — and the flush is bit-identical to the reference.
#[test]
fn drain_tenant_flushes_and_reports_the_published_version() {
    let registry = MapRegistry::new(RegistryConfig::new(engine_config()));
    registry
        .create_tenant("t", make_som(31), TrainSchedule::new(usize::MAX), &[])
        .unwrap();
    let mut reference = Reference::new(31, &[]);

    let examples = stream(55, 9);
    for (signature, label) in &examples {
        registry.feed("t", signature, *label).unwrap();
    }
    let (steps, version) = registry.drain_tenant("t").unwrap();
    reference.mirror_tick(&examples);

    assert_eq!(steps, 9);
    assert_eq!(version, reference.service.version());
    assert_eq!(&registry.tenant_som("t").unwrap(), reference.trainer.som());

    // Draining an empty queue is a no-op that still reports the version.
    let (steps, version_again) = registry.drain_tenant("t").unwrap();
    assert_eq!(steps, 0);
    assert_eq!(version_again, version);

    assert!(matches!(
        registry.drain_tenant("missing"),
        Err(EngineError::UnknownTenant { .. })
    ));
}
