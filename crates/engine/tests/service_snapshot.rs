//! Snapshot-semantics suite for the train-while-serve service.
//!
//! Two properties are pinned down:
//!
//! 1. **Frozen equivalence** — a [`Recognizer`] holding snapshot `v_N`
//!    returns bit-identical predictions to a frozen legacy
//!    `RecognitionEngine` built from the same `v_N` map (from-scratch
//!    [`PackedLayer::pack`] + the snapshot's labels and threshold), i.e. the
//!    incremental layout, the snapshot plumbing and the sharded pool add no
//!    observable behaviour.
//! 2. **No torn layers** — with a trainer publishing concurrently while
//!    recognizers classify, every snapshot a reader observes satisfies the
//!    packed-layer invariants (`#`-counts equal the care-plane popcounts,
//!    the value plane is zero wherever the care plane is, tails are clean):
//!    readers see version `N` or `N+1` in full, never a mix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bsom_engine::{EngineConfig, SomService};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, PackedLayer, TrainSchedule};
use proptest::prelude::*;

fn binary_vector(len: usize) -> impl Strategy<Value = BinaryVector> {
    prop::collection::vec(any::<bool>(), len).prop_map(BinaryVector::from_bits)
}

fn labelled(len: usize, count: usize) -> impl Strategy<Value = Vec<(BinaryVector, ObjectLabel)>> {
    prop::collection::vec((binary_vector(len), 0usize..4), count).prop_map(|v| {
        v.into_iter()
            .map(|(s, l)| (s, ObjectLabel::new(l)))
            .collect()
    })
}

/// Every structural invariant of a published layer that incremental
/// maintenance could conceivably tear: per-neuron `#`-counts vs care-plane
/// popcounts, value-plane masking, and clean tail words.
fn assert_layer_consistent(layer: &PackedLayer) {
    let neurons = layer.neuron_count();
    let words = layer.vector_len().div_ceil(64);
    let rem = layer.vector_len() % 64;
    let tail_mask = if rem == 0 { 0u64 } else { !((1u64 << rem) - 1) };
    assert_eq!(layer.word_row_count(), words);
    for i in 0..neurons {
        let mut concrete = 0usize;
        for w in 0..words {
            let value = layer.value_row(w)[i];
            let care = layer.care_row(w)[i];
            assert_eq!(value & !care, 0, "value bits outside the care plane");
            if w == words - 1 && rem != 0 {
                assert_eq!(care & tail_mask, 0, "tail bits set in the care plane");
                assert_eq!(value & tail_mask, 0, "tail bits set in the value plane");
            }
            concrete += care.count_ones() as usize;
        }
        assert_eq!(
            layer.dont_care_counts()[i] as usize,
            layer.vector_len() - concrete,
            "#-count of neuron {i} does not match its care plane"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Frozen equivalence at an arbitrary published version: train a random
    /// number of epochs (publishing per epoch), then compare the live
    /// recognizer against a legacy engine rebuilt from scratch off the same
    /// map state.
    #[test]
    fn recognizer_matches_a_frozen_engine_built_from_the_same_version(
        seed in any::<u64>(),
        data in labelled(70, 5),
        probes in prop::collection::vec(binary_vector(70), 1..20),
        epochs in 1usize..8,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let som = BSom::new(BSomConfig::new(6, 70), &mut rng);
        let (service, mut trainer) = SomService::train_while_serve(
            som,
            TrainSchedule::new(8),
            &data,
            EngineConfig::with_workers(2),
        );
        trainer.train_epochs(&data, epochs, &mut rng).unwrap();

        let mut recognizer = service.recognizer();
        let live = recognizer.classify_batch(&probes);
        prop_assert_eq!(recognizer.version(), 1 + epochs as u64);

        // The frozen oracle: a from-scratch pack of the same v_N map with
        // the labels/threshold the snapshot was published with.
        let snapshot = service.snapshot();
        prop_assert_eq!(snapshot.layer(), &PackedLayer::pack(trainer.som()));
        #[allow(deprecated)]
        let frozen = bsom_engine::RecognitionEngine::from_parts(
            PackedLayer::pack(trainer.som()),
            snapshot.neuron_labels().to_vec(),
            snapshot.unknown_threshold(),
            2,
        );
        let oracle = frozen.classify_batch(&probes);
        prop_assert_eq!(live, oracle);
        assert_layer_consistent(snapshot.layer());
    }
}

/// Interleaved train/publish/classify from real threads: a trainer feeds and
/// publishes on a tight step cadence while two recognizers classify
/// continuously. Every observed snapshot must be internally consistent
/// (the debug assertion "counts vs popcount" generalized to the packed
/// layer), and versions must be monotone per reader.
#[test]
fn interleaved_train_publish_classify_never_observes_a_torn_layer() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(0x70BE);
    let data: Vec<(BinaryVector, ObjectLabel)> = (0..6)
        .map(|i| (BinaryVector::random(768, &mut rng), ObjectLabel::new(i % 3)))
        .collect();
    let probes: Vec<BinaryVector> = (0..24)
        .map(|_| BinaryVector::random(768, &mut rng))
        .collect();
    let som = BSom::new(BSomConfig::paper_default(), &mut rng);
    let (service, mut trainer) = SomService::train_while_serve(
        som,
        TrainSchedule::new(16),
        &data,
        EngineConfig::with_workers(2).with_publish_every_steps(2),
    );

    let done = Arc::new(AtomicBool::new(false));
    let trainer_done = Arc::clone(&done);
    let trainer_thread = std::thread::spawn(move || {
        for (signature, label) in data.iter().cycle().take(400) {
            trainer.feed(signature, *label).unwrap();
        }
        trainer.publish();
        trainer_done.store(true, Ordering::Release);
        trainer.steps_run()
    });

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let mut recognizer = service.recognizer();
            let done = Arc::clone(&done);
            let probes = probes.clone();
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut batches = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let predictions = recognizer.classify_batch(&probes);
                    assert_eq!(predictions.len(), probes.len());
                    let snapshot = recognizer.snapshot();
                    assert!(
                        snapshot.version() >= last_version,
                        "snapshot versions must be monotone per reader"
                    );
                    last_version = snapshot.version();
                    assert_layer_consistent(snapshot.layer());
                    batches += 1;
                    if finished {
                        return (batches, last_version);
                    }
                }
            })
        })
        .collect();

    let steps = trainer_thread.join().expect("trainer thread panicked");
    assert_eq!(steps, 400);
    for reader in readers {
        let (batches, version) = reader.join().expect("reader thread panicked");
        assert!(batches > 0);
        // The final classify after `done` was observed must have refreshed
        // to the trainer's last publish (400 steps / cadence 2 + explicit
        // publish + initial v1).
        assert_eq!(version, 202);
    }
}

/// The large-map tier of the stress test: a 1024-neuron × 768-bit map —
/// the ROADMAP's 1000+-neuron scale, 25× the paper's 40 neurons — under the
/// same interleaved train/publish/classify load, plus the copy-on-write
/// publication invariants:
///
/// * every snapshot a reader observes is internally consistent (no torn
///   layers) and versions are monotone per reader;
/// * word rows physically shared between consecutively observed snapshots
///   are bit-identical (`Arc` sharing never aliases divergent content);
/// * a publish with zero training steps since the previous one shares
///   **every** row and the `#`-count table — the publish allocated nothing
///   but the row spine.
#[test]
fn large_map_publishes_share_untouched_rows_under_concurrent_load() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(0x1024);
    let data: Vec<(BinaryVector, ObjectLabel)> = (0..6)
        .map(|i| (BinaryVector::random(768, &mut rng), ObjectLabel::new(i % 3)))
        .collect();
    let probes: Vec<BinaryVector> = (0..8)
        .map(|_| BinaryVector::random(768, &mut rng))
        .collect();
    let som = BSom::new(BSomConfig::new(1024, 768), &mut rng);
    let (service, mut trainer) = SomService::train_while_serve(
        som,
        TrainSchedule::new(32),
        &data,
        EngineConfig::with_workers(2).with_publish_every_steps(4),
    );

    let done = Arc::new(AtomicBool::new(false));
    let trainer_done = Arc::clone(&done);
    let trainer_thread = std::thread::spawn(move || {
        for (signature, label) in data.iter().cycle().take(256) {
            trainer.feed(signature, *label).unwrap();
        }
        trainer_done.store(true, Ordering::Release);
        trainer
    });

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let mut recognizer = service.recognizer();
            let done = Arc::clone(&done);
            let probes = probes.clone();
            std::thread::spawn(move || {
                let mut last_version = recognizer.version();
                let mut previous = recognizer.snapshot().layer().clone();
                let mut version_changes = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let predictions = recognizer.classify_batch(&probes);
                    assert_eq!(predictions.len(), probes.len());
                    let snapshot = recognizer.snapshot();
                    assert!(
                        snapshot.version() >= last_version,
                        "snapshot versions must be monotone per reader"
                    );
                    if snapshot.version() != last_version {
                        version_changes += 1;
                        last_version = snapshot.version();
                        assert_layer_consistent(snapshot.layer());
                        // Physically shared rows must be bit-identical
                        // between consecutively observed snapshots.
                        let layer = snapshot.layer();
                        assert!(layer.shared_row_count(&previous) <= layer.word_row_count());
                        for w in 0..layer.word_row_count() {
                            if std::ptr::eq(
                                layer.value_row(w).as_ptr(),
                                previous.value_row(w).as_ptr(),
                            ) {
                                assert_eq!(layer.value_row(w), previous.value_row(w));
                                assert_eq!(layer.care_row(w), previous.care_row(w));
                            }
                        }
                        previous = layer.clone();
                    }
                    if finished {
                        return version_changes;
                    }
                }
            })
        })
        .collect();

    let mut trainer = trainer_thread.join().expect("trainer thread panicked");
    for reader in readers {
        reader.join().expect("reader thread panicked");
    }
    assert_eq!(trainer.steps_run(), 256);

    // 256 steps at cadence 4 published 64 snapshots on top of v1.
    let before = service.snapshot();
    assert_eq!(before.version(), 65);
    assert_layer_consistent(before.layer());

    // A publish with no intervening training steps must share everything:
    // the only fresh allocation is the spine of row pointers.
    let version = trainer.publish();
    let after = service.snapshot();
    assert_eq!(after.version(), version);
    assert_eq!(before.version() + 1, version);
    assert_eq!(
        after.layer().shared_row_count(before.layer()),
        before.layer().word_row_count(),
        "a stepless publish must share all 12 word rows"
    );
    assert!(after.layer().shares_counts_with(before.layer()));
    assert_eq!(after.layer(), before.layer());

    // One more training step, then a publish: rows the step left untouched
    // stay shared, rows it dirtied do not — and the published layer still
    // equals a from-scratch pack word for word.
    let (signature, label) = (&probes[0], ObjectLabel::new(0));
    trainer.feed(signature, label).unwrap();
    trainer.publish();
    let stepped = service.snapshot();
    assert_layer_consistent(stepped.layer());
    assert_eq!(stepped.layer(), &PackedLayer::pack(trainer.som()));
    assert!(stepped.layer().shared_row_count(after.layer()) <= after.layer().word_row_count());
}
