//! Property tier for the registry scheduler: **arbitrary** interleavings of
//! feed / tick / evict / reload / classify / drain across up to 8 tenants
//! leave every tenant bit-identical to N fully independent standalone
//! services replaying the same per-tenant schedule.
//!
//! Where `tests/tenant_isolation.rs` hand-picks adversarial schedules, this
//! tier lets proptest generate them: the op sequence is the input, the
//! differential is the property. Maps are kept tiny (6 neurons × 64 bits)
//! and case counts low so the tier stays inside tier-1 time budgets.

use std::path::PathBuf;

use bsom_engine::{EngineConfig, MapRegistry, RegistryConfig, SomService, Trainer};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NEURONS: usize = 6;
const VECTOR_LEN: usize = 64;
const LABELS: usize = 3;
const MAX_TENANTS: usize = 8;

/// One step of a generated schedule. Tenant indices are taken modulo the
/// case's tenant count, so every generated op is valid.
#[derive(Debug, Clone)]
enum Op {
    /// Queue one deterministic example for tenant `t`.
    Feed(usize),
    /// Flush everything pending with one unbounded tick.
    Tick,
    /// Spill tenant `t` to disk (no-op if already evicted).
    Evict(usize),
    /// Reload tenant `t` eagerly (no-op if resident).
    Reload(usize),
    /// Compare classify output for tenant `t` against its reference.
    Classify(usize),
    /// Flush tenant `t` alone via `drain_tenant`.
    Drain(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted by hand (the offline proptest stand-in has no `prop_oneof`):
    // feeds dominate so schedules actually train.
    (0usize..10, 0..MAX_TENANTS).prop_map(|(kind, t)| match kind {
        0..=3 => Op::Feed(t),
        4 | 5 => Op::Tick,
        6 => Op::Evict(t),
        7 => Op::Reload(t),
        8 => Op::Classify(t),
        _ => Op::Drain(t),
    })
}

fn temp_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bsom-registry-schedule-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_som(seed: u64) -> BSom {
    BSom::new(
        BSomConfig::new(NEURONS, VECTOR_LEN),
        &mut StdRng::seed_from_u64(seed),
    )
}

/// The reference half: one standalone service pair per tenant plus the
/// tenant's own pending queue, mirroring the registry's slot exactly.
struct Reference {
    service: SomService,
    trainer: Trainer,
    pending: Vec<(BinaryVector, ObjectLabel)>,
}

impl Reference {
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        for (signature, label) in self.pending.drain(..) {
            self.trainer.feed(&signature, label).unwrap();
        }
        self.trainer.publish();
    }
}

/// Replays `ops` against a registry and N independent services, diffing
/// continuously (classify ops) and exhaustively at the end (weights,
/// `#`-counts, versions).
fn run_schedule(tenants: usize, ops: &[Op], case_seed: u64) -> Result<(), TestCaseError> {
    let dir = temp_dir(case_seed);
    let config = EngineConfig::with_workers(1);
    let registry = MapRegistry::new(RegistryConfig::new(config).with_spill_dir(&dir));
    let mut references = Vec::new();
    for t in 0..tenants {
        let seed = case_seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        registry
            .create_tenant(
                t as u64,
                make_som(seed),
                TrainSchedule::new(usize::MAX),
                &[],
            )
            .unwrap();
        let (service, trainer) = SomService::train_while_serve(
            make_som(seed),
            TrainSchedule::new(usize::MAX),
            &[],
            config,
        );
        references.push(Reference {
            service,
            trainer,
            pending: Vec::new(),
        });
    }

    let mut example_rng = StdRng::seed_from_u64(case_seed ^ 0xFEED);
    let probes: Vec<BinaryVector> = {
        let mut rng = StdRng::seed_from_u64(case_seed ^ 0x9081);
        (0..3)
            .map(|_| BinaryVector::random(VECTOR_LEN, &mut rng))
            .collect()
    };

    for op in ops {
        match op {
            Op::Feed(t) => {
                let t = t % tenants;
                let label = ObjectLabel::new(example_rng.gen_range(0..LABELS));
                let signature = BinaryVector::random(VECTOR_LEN, &mut example_rng);
                registry.feed(t as u64, &signature, label).unwrap();
                references[t].pending.push((signature, label));
            }
            Op::Tick => {
                let report = registry.train_tick(u64::MAX);
                prop_assert!(report.failures.is_empty(), "tick failed: {report:?}");
                for reference in &mut references {
                    reference.flush();
                }
            }
            Op::Evict(t) => {
                // Ok whether resident or already evicted; the reference side
                // has no notion of residency at all — that is the property.
                registry.evict((t % tenants) as u64).unwrap();
            }
            Op::Reload(t) => {
                registry.reload((t % tenants) as u64).unwrap();
            }
            Op::Classify(t) => {
                let t = t % tenants;
                let got = registry.classify(t as u64, &probes).unwrap();
                let reference = &references[t];
                let want = reference
                    .service
                    .classify_pinned(&reference.service.snapshot(), &probes);
                prop_assert_eq!(got, want);
            }
            Op::Drain(t) => {
                let t = t % tenants;
                let (steps, version) = registry.drain_tenant(t as u64).unwrap();
                let reference = &mut references[t];
                prop_assert_eq!(steps as usize, reference.pending.len());
                reference.flush();
                prop_assert_eq!(version, reference.service.version());
            }
        }
    }

    // Exhaustive end-state differential: maps (weights + config + RNG
    // stream), `#`-count sidecars, versions and pending backlogs all match.
    let mut expected_pending = 0;
    for (t, reference) in references.iter().enumerate() {
        let som = registry.tenant_som(t as u64).unwrap();
        prop_assert_eq!(&som, reference.trainer.som());
        prop_assert_eq!(
            som.dont_care_counts(),
            reference.trainer.som().dont_care_counts()
        );
        prop_assert_eq!(
            registry.version(t as u64).unwrap(),
            reference.service.version()
        );
        expected_pending += reference.pending.len();
    }
    prop_assert_eq!(registry.stats().pending_steps, expected_pending as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The schedule property itself: any interleaving, any tenant count
    /// 1..=8, the registry is indistinguishable from N independent services.
    #[test]
    fn arbitrary_schedules_match_independent_services(
        tenants in 1..MAX_TENANTS + 1,
        ops in prop::collection::vec(op_strategy(), 1..48),
        case_seed in 0u64..1 << 48,
    ) {
        run_schedule(tenants, &ops, case_seed)?;
    }

    /// Degenerate schedules — all ops against one tenant — exercise the
    /// rr_cursor wrap-around and repeated evict/reload of the same slot.
    #[test]
    fn single_tenant_schedules_match_a_single_service(
        ops in prop::collection::vec(op_strategy(), 1..32),
        case_seed in 0u64..1 << 48,
    ) {
        run_schedule(1, &ops, case_seed)?;
    }
}
