//! Blob extraction: from labelled components to per-object silhouettes,
//! bounding boxes, histograms and binary signatures.
//!
//! The paper filters "objects with less than 768 pixels" as noise (§IV),
//! which conveniently also guarantees θ ≥ 1 in Eq. 1. [`MIN_OBJECT_PIXELS`]
//! encodes that constant and [`Blob::is_noise`] applies it.

use bsom_signature::{BinaryVector, ColorHistogram, RgbImage, Silhouette};
use serde::{Deserialize, Serialize};

use crate::connected::ComponentLabels;

/// Minimum number of silhouette pixels for a detection to count as a real
/// object (paper §IV).
pub const MIN_OBJECT_PIXELS: usize = 768;

/// An axis-aligned bounding box in pixel coordinates (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Smallest x coordinate covered.
    pub min_x: usize,
    /// Smallest y coordinate covered.
    pub min_y: usize,
    /// Largest x coordinate covered.
    pub max_x: usize,
    /// Largest y coordinate covered.
    pub max_y: usize,
}

impl BoundingBox {
    /// Width of the box in pixels.
    pub fn width(&self) -> usize {
        self.max_x - self.min_x + 1
    }

    /// Height of the box in pixels.
    pub fn height(&self) -> usize {
        self.max_y - self.min_y + 1
    }

    /// Area of the box in pixels.
    pub fn area(&self) -> usize {
        self.width() * self.height()
    }

    /// Centre of the box as floating-point pixel coordinates.
    pub fn centroid(&self) -> (f64, f64) {
        (
            (self.min_x + self.max_x) as f64 / 2.0,
            (self.min_y + self.max_y) as f64 / 2.0,
        )
    }
}

/// One segmented moving object in one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blob {
    /// The 1-based component label this blob was extracted from.
    pub component: u32,
    /// Number of silhouette pixels.
    pub area: usize,
    /// Bounding box of the silhouette.
    pub bbox: BoundingBox,
    /// Centroid of the silhouette pixels (not of the bounding box).
    pub centroid: (f64, f64),
    /// The full-frame silhouette mask.
    pub silhouette: Silhouette,
}

impl Blob {
    /// Whether the paper's noise filter would discard this blob.
    pub fn is_noise(&self) -> bool {
        self.area < MIN_OBJECT_PIXELS
    }

    /// Builds the colour histogram of the blob's pixels in the given frame
    /// (paper §III-A), or `None` when the frame size does not match the
    /// silhouette.
    pub fn histogram(&self, frame: &RgbImage) -> Option<ColorHistogram> {
        frame.masked_histogram(&self.silhouette).ok()
    }

    /// Extracts the blob's 768-bit binary signature from the given frame
    /// (histogram → mean threshold → bits), or `None` when the frame size
    /// does not match.
    pub fn signature(&self, frame: &RgbImage) -> Option<BinaryVector> {
        self.histogram(frame).map(|h| h.to_signature())
    }
}

/// Extracts one blob per connected component from a labelling result.
///
/// Blobs are returned ordered by component id; no size filtering is applied
/// here — callers decide whether to apply [`Blob::is_noise`] (the paper does,
/// the tests sometimes want the raw blobs).
pub fn extract_blobs(labels: &ComponentLabels) -> Vec<Blob> {
    let count = labels.component_count();
    if count == 0 {
        return Vec::new();
    }
    struct Accumulator {
        area: usize,
        min_x: usize,
        min_y: usize,
        max_x: usize,
        max_y: usize,
        sum_x: f64,
        sum_y: f64,
        silhouette: Silhouette,
    }
    let mut accs: Vec<Accumulator> = (0..count)
        .map(|_| Accumulator {
            area: 0,
            min_x: usize::MAX,
            min_y: usize::MAX,
            max_x: 0,
            max_y: 0,
            sum_x: 0.0,
            sum_y: 0.0,
            silhouette: Silhouette::new(labels.width(), labels.height()),
        })
        .collect();

    for y in 0..labels.height() {
        for x in 0..labels.width() {
            let l = labels.label(x, y);
            if l == 0 {
                continue;
            }
            let acc = &mut accs[(l - 1) as usize];
            acc.area += 1;
            acc.min_x = acc.min_x.min(x);
            acc.min_y = acc.min_y.min(y);
            acc.max_x = acc.max_x.max(x);
            acc.max_y = acc.max_y.max(y);
            acc.sum_x += x as f64;
            acc.sum_y += y as f64;
            acc.silhouette.mark(x, y);
        }
    }

    accs.into_iter()
        .enumerate()
        .filter(|(_, a)| a.area > 0)
        .map(|(i, a)| Blob {
            component: (i + 1) as u32,
            area: a.area,
            bbox: BoundingBox {
                min_x: a.min_x,
                min_y: a.min_y,
                max_x: a.max_x,
                max_y: a.max_y,
            },
            centroid: (a.sum_x / a.area as f64, a.sum_y / a.area as f64),
            silhouette: a.silhouette,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connected::label_components;
    use bsom_signature::{BinaryImage, Rgb};

    fn mask_from_rows(rows: &[&str]) -> BinaryImage {
        let height = rows.len();
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut mask = BinaryImage::new(width, height);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                mask.set(x, y, c == '#');
            }
        }
        mask
    }

    #[test]
    fn bounding_box_geometry() {
        let b = BoundingBox {
            min_x: 2,
            min_y: 3,
            max_x: 5,
            max_y: 7,
        };
        assert_eq!(b.width(), 4);
        assert_eq!(b.height(), 5);
        assert_eq!(b.area(), 20);
        assert_eq!(b.centroid(), (3.5, 5.0));
    }

    #[test]
    fn extract_blobs_from_two_components() {
        let mask = mask_from_rows(&["##....", "##....", "......", "...###"]);
        let labels = label_components(&mask);
        let blobs = extract_blobs(&labels);
        assert_eq!(blobs.len(), 2);
        let first = &blobs[0];
        assert_eq!(first.area, 4);
        assert_eq!(first.bbox.min_x, 0);
        assert_eq!(first.bbox.max_x, 1);
        assert_eq!(first.centroid, (0.5, 0.5));
        assert_eq!(first.silhouette.area(), 4);
        let second = &blobs[1];
        assert_eq!(second.area, 3);
        assert_eq!(second.bbox.min_y, 3);
        assert_eq!(second.centroid, (4.0, 3.0));
    }

    #[test]
    fn empty_labels_give_no_blobs() {
        let labels = label_components(&BinaryImage::new(8, 8));
        assert!(extract_blobs(&labels).is_empty());
    }

    #[test]
    fn noise_filter_threshold_is_768_pixels() {
        let mask = mask_from_rows(&["###", "###"]);
        let labels = label_components(&mask);
        let blobs = extract_blobs(&labels);
        assert!(blobs[0].is_noise());
        assert_eq!(MIN_OBJECT_PIXELS, 768);

        // A 32x32 solid square (1024 px) exceeds the threshold.
        let mut big = BinaryImage::new(64, 64);
        for y in 0..32 {
            for x in 0..32 {
                big.set(x, y, true);
            }
        }
        let blobs = extract_blobs(&label_components(&big));
        assert_eq!(blobs.len(), 1);
        assert!(!blobs[0].is_noise());
    }

    #[test]
    fn blob_histogram_and_signature_only_cover_silhouette() {
        let mask = mask_from_rows(&["##..", "##..", "....", "...."]);
        let labels = label_components(&mask);
        let blobs = extract_blobs(&labels);
        let mut frame = RgbImage::filled(4, 4, Rgb::new(10, 10, 10));
        // Paint the blob area red.
        for y in 0..2 {
            for x in 0..2 {
                frame.set(x, y, Rgb::new(220, 10, 10));
            }
        }
        let hist = blobs[0].histogram(&frame).unwrap();
        assert_eq!(hist.pixel_count(), 4);
        assert_eq!(hist.red()[220], 4);
        assert_eq!(hist.red()[10], 0, "background pixels must not contribute");
        let sig = blobs[0].signature(&frame).unwrap();
        assert_eq!(sig.len(), 768);
        assert!(sig.bit(220));
    }

    #[test]
    fn blob_histogram_rejects_mismatched_frame() {
        let mask = mask_from_rows(&["#"]);
        let blobs = extract_blobs(&label_components(&mask));
        let frame = RgbImage::new(5, 5);
        assert!(blobs[0].histogram(&frame).is_none());
        assert!(blobs[0].signature(&frame).is_none());
    }
}
