//! The end-to-end CPU-side pipeline: frames in, labelled binary signatures out.
//!
//! This composes the substrate exactly as the paper's Fig. 1 describes the
//! upstream system: segmentation (background differencing) → connected
//! components → blob extraction and noise filtering → tracking → per-object
//! colour histogram → binary signature. The signatures it emits are what gets
//! "fed onto the FPGA" in the paper.

use bsom_signature::{BinaryVector, ColorHistogram, RgbImage};
use serde::{Deserialize, Serialize};

use crate::background::{BackgroundConfig, BackgroundModel};
use crate::blob::{extract_blobs, Blob, BoundingBox};
use crate::connected::label_components;
use crate::tracker::{TrackId, Tracker, TrackerConfig};

/// One tracked-object observation produced for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectObservation {
    /// The track the observation was associated with.
    pub track: TrackId,
    /// Area of the silhouette in pixels.
    pub area: usize,
    /// Bounding box of the silhouette.
    pub bbox: BoundingBox,
    /// Centroid of the silhouette.
    pub centroid: (f64, f64),
    /// The object's colour histogram over its silhouette.
    pub histogram: ColorHistogram,
    /// The 768-bit binary signature (histogram thresholded at its mean).
    pub signature: BinaryVector,
}

/// Configuration for the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PipelineConfig {
    /// Background subtraction parameters.
    pub background: BackgroundConfig,
    /// Tracker parameters.
    pub tracker: TrackerConfig,
    /// Minimum silhouette area; blobs below it are discarded as noise.
    /// `None` uses the paper's 768-pixel rule.
    pub min_object_pixels: Option<usize>,
}

/// The composed surveillance pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveillancePipeline {
    background: BackgroundModel,
    tracker: Tracker,
    min_object_pixels: usize,
    frames_processed: u64,
}

impl SurveillancePipeline {
    /// Creates a pipeline for frames of the given size with default
    /// parameters.
    pub fn new(width: usize, height: usize) -> Self {
        Self::with_config(width, height, PipelineConfig::default())
    }

    /// Creates a pipeline with explicit parameters.
    pub fn with_config(width: usize, height: usize, config: PipelineConfig) -> Self {
        SurveillancePipeline {
            background: BackgroundModel::new(width, height, config.background),
            tracker: Tracker::new(config.tracker),
            min_object_pixels: config
                .min_object_pixels
                .unwrap_or(crate::blob::MIN_OBJECT_PIXELS),
            frames_processed: 0,
        }
    }

    /// The minimum silhouette area below which detections are discarded.
    pub fn min_object_pixels(&self) -> usize {
        self.min_object_pixels
    }

    /// Number of frames processed through [`process_frame`](Self::process_frame).
    pub fn frames_processed(&self) -> u64 {
        self.frames_processed
    }

    /// The current set of live tracks.
    pub fn tracks(&self) -> &[crate::tracker::Track] {
        self.tracker.tracks()
    }

    /// Absorbs a frame known to contain only background (warm-up).
    pub fn observe_background(&mut self, frame: &RgbImage) {
        self.background.observe_background(frame);
    }

    /// Processes one frame: segments, labels, filters, tracks and extracts a
    /// signature per surviving object.
    pub fn process_frame(&mut self, frame: &RgbImage) -> Vec<ObjectObservation> {
        self.frames_processed += 1;
        let mask = self.background.segment(frame);
        let labels = label_components(&mask);
        let blobs: Vec<Blob> = extract_blobs(&labels)
            .into_iter()
            .filter(|b| b.area >= self.min_object_pixels)
            .collect();
        let assignments = self.tracker.update(&blobs);

        assignments
            .into_iter()
            .filter_map(|(track, blob_index)| {
                let blob = &blobs[blob_index];
                let histogram = blob.histogram(frame)?;
                let signature = histogram.to_signature();
                Some(ObjectObservation {
                    track,
                    area: blob.area,
                    bbox: blob.bbox,
                    centroid: blob.centroid,
                    histogram,
                    signature,
                })
            })
            .collect()
    }

    /// Processes a batch of consecutive frames in order, returning the
    /// observations of each frame.
    ///
    /// The pipeline itself is stateful (background model, tracker), so frames
    /// are consumed sequentially; the value of the batch form is downstream —
    /// `bsom_engine::RecognitionEngine` feeds the flattened signatures of a
    /// whole batch through its sharded winner search in one go.
    pub fn process_frames(&mut self, frames: &[RgbImage]) -> Vec<Vec<ObjectObservation>> {
        frames.iter().map(|f| self.process_frame(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{SceneConfig, SceneSimulator};
    use bsom_signature::Rgb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xF1F0)
    }

    /// Builds a pipeline warmed up on the given simulator's background.
    fn warmed_pipeline(sim: &mut SceneSimulator, rng: &mut StdRng) -> SurveillancePipeline {
        let mut pipeline = SurveillancePipeline::new(sim.config().width, sim.config().height);
        for _ in 0..10 {
            let frame = sim.render_background_only(rng);
            pipeline.observe_background(&frame);
        }
        pipeline
    }

    #[test]
    fn empty_scene_produces_no_observations() {
        let mut r = rng();
        let config = SceneConfig {
            entry_probability: 0.0,
            ..SceneConfig::small()
        };
        let mut sim = SceneSimulator::new(config, &mut r);
        let mut pipeline = warmed_pipeline(&mut sim, &mut r);
        for _ in 0..5 {
            let frame = sim.render_frame(&mut r);
            let obs = pipeline.process_frame(&frame.image);
            assert!(obs.is_empty());
        }
        assert_eq!(pipeline.frames_processed(), 5);
    }

    #[test]
    fn walking_person_is_detected_and_tracked_consistently() {
        let mut r = rng();
        let config = SceneConfig {
            entry_probability: 0.0,
            lighting_drift: 4,
            jitter: 0,
            ..SceneConfig::small()
        };
        let mut sim = SceneSimulator::new(config, &mut r);
        let mut pipeline = warmed_pipeline(&mut sim, &mut r);
        // Use a lower area threshold appropriate to the small scene's person size.
        let mut pipeline_small = SurveillancePipeline::with_config(
            sim.config().width,
            sim.config().height,
            PipelineConfig {
                min_object_pixels: Some(300),
                ..PipelineConfig::default()
            },
        );
        std::mem::swap(&mut pipeline, &mut pipeline_small);
        for _ in 0..10 {
            let frame = sim.render_background_only(&mut r);
            pipeline.observe_background(&frame);
        }

        sim.spawn_person(4, true);
        let mut track_ids = std::collections::BTreeSet::new();
        let mut detections = 0;
        for _ in 0..40 {
            let frame = sim.render_frame(&mut r);
            for obs in pipeline.process_frame(&frame.image) {
                detections += 1;
                track_ids.insert(obs.track);
                assert_eq!(obs.signature.len(), 768);
                assert!(obs.area >= 300);
                assert!(obs.histogram.pixel_count() as usize >= 300);
            }
        }
        assert!(detections > 10, "detections = {detections}");
        assert!(
            track_ids.len() <= 3,
            "one walking person should map to very few tracks, got {}",
            track_ids.len()
        );
    }

    #[test]
    fn two_people_yield_two_distinct_tracks() {
        let mut r = rng();
        let config = SceneConfig {
            entry_probability: 0.0,
            jitter: 0,
            lighting_drift: 0,
            ..SceneConfig::small()
        };
        let mut sim = SceneSimulator::new(config, &mut r);
        let mut pipeline = SurveillancePipeline::with_config(
            sim.config().width,
            sim.config().height,
            PipelineConfig {
                min_object_pixels: Some(300),
                ..PipelineConfig::default()
            },
        );
        for _ in 0..10 {
            let frame = sim.render_background_only(&mut r);
            pipeline.observe_background(&frame);
        }
        sim.spawn_person(0, true);
        sim.spawn_person(5, false);
        let mut max_simultaneous = 0;
        for _ in 0..30 {
            let frame = sim.render_frame(&mut r);
            let obs = pipeline.process_frame(&frame.image);
            if obs.len() == 2 {
                assert_ne!(obs[0].track, obs[1].track);
            }
            max_simultaneous = max_simultaneous.max(obs.len());
        }
        assert!(max_simultaneous >= 1);
    }

    #[test]
    fn noise_pixels_are_filtered_by_area() {
        let mut pipeline = SurveillancePipeline::new(32, 32);
        let bg = RgbImage::filled(32, 32, Rgb::new(30, 30, 30));
        pipeline.observe_background(&bg);
        // A 3x3 bright noise blotch: far below the default 768-pixel filter.
        let mut noisy = bg.clone();
        for y in 10..13 {
            for x in 10..13 {
                noisy.set(x, y, Rgb::new(250, 250, 250));
            }
        }
        let obs = pipeline.process_frame(&noisy);
        assert!(obs.is_empty());
        assert_eq!(pipeline.min_object_pixels(), 768);
    }

    #[test]
    fn custom_area_threshold_is_respected() {
        let mut pipeline = SurveillancePipeline::with_config(
            32,
            32,
            PipelineConfig {
                min_object_pixels: Some(4),
                ..PipelineConfig::default()
            },
        );
        let bg = RgbImage::filled(32, 32, Rgb::new(30, 30, 30));
        pipeline.observe_background(&bg);
        let mut noisy = bg.clone();
        for y in 10..13 {
            for x in 10..13 {
                noisy.set(x, y, Rgb::new(250, 30, 30));
            }
        }
        let obs = pipeline.process_frame(&noisy);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].area, 9);
        assert!(obs[0].signature.bit(250), "red bin must be set");
        assert_eq!(pipeline.tracks().len(), 1);
    }
}
