//! Synthetic indoor surveillance scene.
//!
//! The paper's dataset is a two-hour recording of a building entrance: nine
//! different people walking past office furniture, wide windows causing
//! lighting variation, and the usual camera jitter. That recording is not
//! available, so this module synthesises the same *kind* of footage: a static
//! indoor background with furniture, nine person models with distinct
//! clothing colours, horizontal walk-throughs, per-pixel colour noise,
//! global lighting drift and whole-frame jitter. The renderer also reports
//! ground truth (who is visible where), which the dataset crate uses to label
//! signatures the way the paper's operator labelled theirs manually.

use bsom_signature::{Rgb, RgbImage};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A static rectangular occluder (desk, cabinet, …) drawn in front of people.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Furniture {
    /// Left edge in pixels.
    pub x: usize,
    /// Top edge in pixels.
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Colour of the furniture.
    pub colour: Rgb,
}

/// Scene geometry and corruption parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of distinct person identities (the paper uses nine).
    pub person_count: usize,
    /// Width of a rendered person in pixels.
    pub person_width: usize,
    /// Height of a rendered person in pixels.
    pub person_height: usize,
    /// Static occluders drawn in front of people.
    pub furniture: Vec<Furniture>,
    /// Maximum absolute global brightness offset (lighting drift from the
    /// windows).
    pub lighting_drift: i16,
    /// Maximum whole-frame jitter in pixels (camera shake).
    pub jitter: usize,
    /// Per-pixel colour noise amplitude applied to clothing.
    pub colour_noise: u8,
    /// Probability per frame that an idle person enters the scene.
    pub entry_probability: f64,
    /// Horizontal walking speed in pixels per frame.
    pub walk_speed: f64,
}

impl SceneConfig {
    /// A small, fast scene used by tests and examples: 160 × 120 frames,
    /// nine identities, two occluders.
    pub fn small() -> Self {
        SceneConfig {
            width: 160,
            height: 120,
            person_count: 9,
            person_width: 28,
            person_height: 64,
            furniture: vec![
                Furniture {
                    x: 60,
                    y: 88,
                    width: 36,
                    height: 30,
                    colour: Rgb::new(90, 60, 35),
                },
                Furniture {
                    x: 120,
                    y: 92,
                    width: 28,
                    height: 26,
                    colour: Rgb::new(70, 70, 80),
                },
            ],
            lighting_drift: 14,
            jitter: 1,
            colour_noise: 18,
            entry_probability: 0.05,
            walk_speed: 2.0,
        }
    }

    /// A larger scene closer to the paper's VGA-ish footage (320 × 240).
    pub fn paper_like() -> Self {
        let mut config = Self::small();
        config.width = 320;
        config.height = 240;
        config.person_width = 44;
        config.person_height = 120;
        config.furniture = vec![
            Furniture {
                x: 120,
                y: 170,
                width: 70,
                height: 66,
                colour: Rgb::new(92, 62, 38),
            },
            Furniture {
                x: 240,
                y: 180,
                width: 56,
                height: 56,
                colour: Rgb::new(72, 72, 84),
            },
        ];
        config.walk_speed = 3.0;
        config
    }
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// The clothing palette of one person identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersonModel {
    /// The identity index (0-based; the paper's nine people map to 0..9).
    pub label: usize,
    /// Head / skin colour.
    pub head: Rgb,
    /// Torso (shirt / jacket) colour.
    pub torso: Rgb,
    /// Leg (trousers / skirt) colour.
    pub legs: Rgb,
}

impl PersonModel {
    /// Generates a palette for identity `label`. The base hues are spread
    /// around the colour wheel so the nine identities are distinguishable by
    /// colour histogram (as real clothing tends to be), with per-identity
    /// random variation on top.
    pub fn generate<R: Rng + ?Sized>(label: usize, rng: &mut R) -> Self {
        // Spread torso hues; legs get a darker, shifted hue; heads are skin-ish.
        let hue = (label as f64 * 360.0 / 9.0 + rng.gen_range(-12.0..12.0)).rem_euclid(360.0);
        let torso = hsv_to_rgb(hue, 0.75, 0.85);
        let legs_hue = (hue + 150.0 + rng.gen_range(-20.0..20.0)).rem_euclid(360.0);
        let legs = hsv_to_rgb(legs_hue, 0.6, 0.45);
        let head = Rgb::new(
            200u8.saturating_add(rng.gen_range(0..30)),
            160u8.saturating_add(rng.gen_range(0..30)),
            130u8.saturating_add(rng.gen_range(0..30)),
        );
        PersonModel {
            label,
            head,
            torso,
            legs,
        }
    }
}

/// Converts an HSV colour (`h` in degrees, `s`/`v` in `[0, 1]`) to RGB.
pub fn hsv_to_rgb(h: f64, s: f64, v: f64) -> Rgb {
    let h = h.rem_euclid(360.0);
    let c = v * s;
    let x = c * (1.0 - ((h / 60.0) % 2.0 - 1.0).abs());
    let m = v - c;
    let (r, g, b) = match h as u32 {
        0..=59 => (c, x, 0.0),
        60..=119 => (x, c, 0.0),
        120..=179 => (0.0, c, x),
        180..=239 => (0.0, x, c),
        240..=299 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    Rgb::new(
        ((r + m) * 255.0).round() as u8,
        ((g + m) * 255.0).round() as u8,
        ((b + m) * 255.0).round() as u8,
    )
}

/// Ground truth for one visible person in one rendered frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthObject {
    /// Identity index of the person.
    pub person: usize,
    /// Centre of the rendered person (before occlusion).
    pub centroid: (f64, f64),
}

/// One rendered frame with its ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneFrame {
    /// Index of the frame in the simulated sequence.
    pub frame_index: u64,
    /// The rendered RGB image.
    pub image: RgbImage,
    /// Which identities are visible and where.
    pub ground_truth: Vec<GroundTruthObject>,
}

/// A person currently walking through the scene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ActivePerson {
    person: usize,
    x: f64,
    y: f64,
    velocity: f64,
}

/// The synthetic scene simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSimulator {
    config: SceneConfig,
    persons: Vec<PersonModel>,
    active: Vec<ActivePerson>,
    background: RgbImage,
    frame_index: u64,
    lighting_phase: f64,
}

impl SceneSimulator {
    /// Creates a simulator: generates the person palettes and the static
    /// background (wall gradient, floor, furniture).
    pub fn new<R: Rng + ?Sized>(config: SceneConfig, rng: &mut R) -> Self {
        let persons = (0..config.person_count)
            .map(|i| PersonModel::generate(i, rng))
            .collect();
        let background = Self::render_static_background(&config);
        SceneSimulator {
            config,
            persons,
            active: Vec::new(),
            background,
            frame_index: 0,
            lighting_phase: 0.0,
        }
    }

    /// The scene configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// The person appearance models, indexed by identity.
    pub fn persons(&self) -> &[PersonModel] {
        &self.persons
    }

    /// Number of people currently inside the scene.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    fn render_static_background(config: &SceneConfig) -> RgbImage {
        let mut img = RgbImage::new(config.width, config.height);
        let floor_y = config.height * 3 / 4;
        for y in 0..config.height {
            for x in 0..config.width {
                let colour = if y < floor_y {
                    // Wall: light grey gradient brighter near the window side.
                    let bright = 150 + (x * 40 / config.width.max(1)) as i16;
                    Rgb::new(bright as u8, bright as u8, (bright + 5).min(255) as u8)
                } else {
                    // Floor: warm brown.
                    Rgb::new(120, 100, 80)
                };
                img.set(x, y, colour);
            }
        }
        for f in &config.furniture {
            for y in f.y..(f.y + f.height).min(config.height) {
                for x in f.x..(f.x + f.width).min(config.width) {
                    img.set(x, y, f.colour);
                }
            }
        }
        img
    }

    /// Forces a specific person to enter the scene on the next frames,
    /// walking left-to-right (`from_left = true`) or right-to-left.
    pub fn spawn_person(&mut self, person: usize, from_left: bool) {
        if person >= self.persons.len() {
            return;
        }
        let (x, velocity) = if from_left {
            (-(self.config.person_width as f64), self.config.walk_speed)
        } else {
            (self.config.width as f64, -self.config.walk_speed)
        };
        let y = (self.config.height * 3 / 4) as f64 - self.config.person_height as f64;
        self.active.push(ActivePerson {
            person,
            x,
            y,
            velocity,
        });
    }

    /// Renders the empty scene (no people) with lighting drift and jitter —
    /// used to warm up background models.
    pub fn render_background_only<R: Rng + ?Sized>(&mut self, rng: &mut R) -> RgbImage {
        let frame = self.compose_frame(rng, false);
        frame.image
    }

    /// Advances the simulation one frame: possibly spawns a person, moves the
    /// active ones, and renders the result with ground truth.
    pub fn render_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SceneFrame {
        // Random entries.
        if self.active.len() < self.persons.len()
            && rng.gen::<f64>() < self.config.entry_probability
        {
            let person = rng.gen_range(0..self.persons.len());
            let already_active = self.active.iter().any(|a| a.person == person);
            if !already_active {
                let from_left = rng.gen();
                self.spawn_person(person, from_left);
            }
        }
        self.compose_frame(rng, true)
    }

    fn compose_frame<R: Rng + ?Sized>(&mut self, rng: &mut R, move_people: bool) -> SceneFrame {
        let config = &self.config;
        let mut image = self.background.clone();

        // Lighting drift: a slow sinusoid plus small random walk.
        self.lighting_phase += 0.02;
        let drift = (self.lighting_phase.sin() * f64::from(config.lighting_drift)).round() as i16
            + rng.gen_range(-2..=2);

        let mut ground_truth = Vec::new();

        if move_people {
            for a in &mut self.active {
                a.x += a.velocity;
            }
        }

        // Draw people (before furniture so furniture occludes them).
        for a in &self.active {
            let model = self.persons[a.person];
            draw_person(&mut image, config, model, a.x, a.y, rng);
            ground_truth.push(GroundTruthObject {
                person: a.person,
                centroid: (
                    a.x + config.person_width as f64 / 2.0,
                    a.y + config.person_height as f64 / 2.0,
                ),
            });
        }

        // Re-draw furniture over the people.
        for f in &config.furniture {
            for y in f.y..(f.y + f.height).min(config.height) {
                for x in f.x..(f.x + f.width).min(config.width) {
                    image.set(x, y, f.colour);
                }
            }
        }

        // Global lighting offset.
        if drift != 0 {
            let mut lit = RgbImage::new(config.width, config.height);
            for (x, y, c) in image.enumerate_pixels() {
                lit.set(x, y, c.brightened(drift));
            }
            image = lit;
        }

        // Whole-frame jitter: shift the image by up to `jitter` pixels.
        if config.jitter > 0 {
            let jitter = config.jitter as i64;
            let dx = rng.gen_range(-jitter..=jitter);
            let dy = rng.gen_range(-jitter..=jitter);
            if dx != 0 || dy != 0 {
                image = shift_image(&image, dx, dy);
            }
        }

        // Retire people who left the frame.
        let width = config.width as f64;
        let person_width = config.person_width as f64;
        if move_people {
            self.active
                .retain(|a| a.x > -person_width - 1.0 && a.x < width + 1.0);
        }

        let frame = SceneFrame {
            frame_index: self.frame_index,
            image,
            ground_truth,
        };
        self.frame_index += 1;
        frame
    }
}

/// Draws a person as a head + torso + legs figure with per-pixel colour noise.
fn draw_person<R: Rng + ?Sized>(
    image: &mut RgbImage,
    config: &SceneConfig,
    model: PersonModel,
    x: f64,
    y: f64,
    rng: &mut R,
) {
    let w = config.person_width as i64;
    let h = config.person_height as i64;
    let x0 = x.round() as i64;
    let y0 = y.round() as i64;
    let head_h = h / 5;
    let torso_h = h * 2 / 5;
    let noise = config.colour_noise;

    for dy in 0..h {
        for dx in 0..w {
            let px = x0 + dx;
            let py = y0 + dy;
            if px < 0 || py < 0 {
                continue;
            }
            // Taper the head region to a narrower column.
            let in_head = dy < head_h;
            if in_head && (dx < w / 3 || dx > 2 * w / 3) {
                continue;
            }
            let base = if in_head {
                model.head
            } else if dy < head_h + torso_h {
                model.torso
            } else {
                model.legs
            };
            let mut jitter = |c: u8| -> u8 {
                let delta = rng.gen_range(-(i16::from(noise))..=i16::from(noise));
                (i16::from(c) + delta).clamp(0, 255) as u8
            };
            image.set(
                px as usize,
                py as usize,
                Rgb::new(jitter(base.r), jitter(base.g), jitter(base.b)),
            );
        }
    }
}

/// Shifts an image by `(dx, dy)`, filling exposed borders with the nearest
/// edge pixel (a cheap stand-in for what a real jittering camera sees).
fn shift_image(image: &RgbImage, dx: i64, dy: i64) -> RgbImage {
    let w = image.width();
    let h = image.height();
    let mut out = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let sx = (x as i64 - dx).clamp(0, w as i64 - 1) as usize;
            let sy = (y as i64 - dy).clamp(0, h as i64 - 1) as usize;
            out.set(x, y, image.pixel(sx, sy));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5CE)
    }

    #[test]
    fn hsv_primary_colours() {
        assert_eq!(hsv_to_rgb(0.0, 1.0, 1.0), Rgb::new(255, 0, 0));
        assert_eq!(hsv_to_rgb(120.0, 1.0, 1.0), Rgb::new(0, 255, 0));
        assert_eq!(hsv_to_rgb(240.0, 1.0, 1.0), Rgb::new(0, 0, 255));
        assert_eq!(hsv_to_rgb(0.0, 0.0, 1.0), Rgb::WHITE);
        assert_eq!(hsv_to_rgb(360.0, 1.0, 1.0), Rgb::new(255, 0, 0));
    }

    #[test]
    fn person_models_are_distinct() {
        let mut r = rng();
        let models: Vec<PersonModel> = (0..9).map(|i| PersonModel::generate(i, &mut r)).collect();
        for i in 0..9 {
            assert_eq!(models[i].label, i);
            for j in (i + 1)..9 {
                assert!(
                    models[i].torso.distance_sq(models[j].torso) > 400,
                    "torso colours of identities {i} and {j} are too close"
                );
            }
        }
    }

    #[test]
    fn simulator_starts_empty_and_spawns_on_request() {
        let mut r = rng();
        let mut sim = SceneSimulator::new(SceneConfig::small(), &mut r);
        assert_eq!(sim.active_count(), 0);
        assert_eq!(sim.persons().len(), 9);
        sim.spawn_person(3, true);
        assert_eq!(sim.active_count(), 1);
        // Spawning an unknown identity is a no-op.
        sim.spawn_person(99, true);
        assert_eq!(sim.active_count(), 1);
    }

    #[test]
    fn background_only_frames_have_no_ground_truth_people() {
        let mut r = rng();
        let mut sim = SceneSimulator::new(SceneConfig::small(), &mut r);
        let img = sim.render_background_only(&mut r);
        assert_eq!(img.width(), 160);
        assert_eq!(img.height(), 120);
    }

    #[test]
    fn rendered_person_changes_pixels_relative_to_background() {
        let mut r = rng();
        let config = SceneConfig {
            lighting_drift: 0,
            jitter: 0,
            entry_probability: 0.0,
            ..SceneConfig::small()
        };
        let mut sim = SceneSimulator::new(config, &mut r);
        let empty = sim.render_background_only(&mut r);
        sim.spawn_person(0, true);
        // Step a few frames so the person is well inside the view.
        let mut frame = sim.render_frame(&mut r);
        for _ in 0..20 {
            frame = sim.render_frame(&mut r);
        }
        assert_eq!(frame.ground_truth.len(), 1);
        assert_eq!(frame.ground_truth[0].person, 0);
        let changed = empty
            .enumerate_pixels()
            .filter(|&(x, y, c)| frame.image.pixel(x, y).distance_sq(c) > 900)
            .count();
        assert!(
            changed > 500,
            "a visible person should change many pixels, changed = {changed}"
        );
    }

    #[test]
    fn person_walks_across_and_eventually_leaves() {
        let mut r = rng();
        let config = SceneConfig {
            entry_probability: 0.0,
            ..SceneConfig::small()
        };
        let mut sim = SceneSimulator::new(config, &mut r);
        sim.spawn_person(2, true);
        let mut seen_frames = 0;
        for _ in 0..250 {
            let frame = sim.render_frame(&mut r);
            if !frame.ground_truth.is_empty() {
                seen_frames += 1;
            }
        }
        assert!(seen_frames > 30, "person should be visible for a while");
        assert_eq!(sim.active_count(), 0, "person should have left the scene");
    }

    #[test]
    fn ground_truth_centroid_moves_with_the_walker() {
        let mut r = rng();
        let config = SceneConfig {
            entry_probability: 0.0,
            ..SceneConfig::small()
        };
        let mut sim = SceneSimulator::new(config, &mut r);
        sim.spawn_person(1, true);
        let first = sim.render_frame(&mut r);
        let mut last = first.clone();
        for _ in 0..10 {
            last = sim.render_frame(&mut r);
        }
        let x0 = first.ground_truth[0].centroid.0;
        let x1 = last.ground_truth[0].centroid.0;
        assert!(x1 > x0, "walker should move to the right: {x0} -> {x1}");
    }

    #[test]
    fn random_entries_eventually_occur() {
        let mut r = rng();
        let config = SceneConfig {
            entry_probability: 0.5,
            ..SceneConfig::small()
        };
        let mut sim = SceneSimulator::new(config, &mut r);
        let mut any_person = false;
        for _ in 0..50 {
            let frame = sim.render_frame(&mut r);
            if !frame.ground_truth.is_empty() {
                any_person = true;
                break;
            }
        }
        assert!(any_person);
    }

    #[test]
    fn frame_indices_are_sequential() {
        let mut r = rng();
        let mut sim = SceneSimulator::new(SceneConfig::small(), &mut r);
        let a = sim.render_frame(&mut r);
        let b = sim.render_frame(&mut r);
        assert_eq!(b.frame_index, a.frame_index + 1);
    }

    #[test]
    fn shift_image_moves_content() {
        let mut img = RgbImage::new(4, 4);
        img.set(1, 1, Rgb::WHITE);
        let shifted = shift_image(&img, 1, 0);
        assert_eq!(shifted.pixel(2, 1), Rgb::WHITE);
        assert_eq!(shifted.pixel(1, 1), Rgb::BLACK);
    }

    #[test]
    fn paper_like_config_is_larger() {
        let small = SceneConfig::small();
        let big = SceneConfig::paper_like();
        assert!(big.width > small.width);
        assert!(big.person_height > small.person_height);
        assert_eq!(big.person_count, 9);
        assert_eq!(SceneConfig::default(), small);
    }
}
