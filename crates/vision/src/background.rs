//! Running-average background subtraction.
//!
//! The paper's upstream pipeline performs "background differencing" to find
//! moving objects. This module implements the standard running-average model:
//! a per-pixel background estimate updated as
//! `B ← (1 − α)·B + α·I` on frames (or regions) considered background, with a
//! pixel flagged as foreground when its squared colour distance from the
//! estimate exceeds a threshold.

use bsom_signature::{BinaryImage, Rgb, RgbImage};
use serde::{Deserialize, Serialize};

/// Configuration of the running-average background model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundConfig {
    /// Learning rate α of the running average, in `[0, 1]`.
    pub learning_rate: f64,
    /// Squared RGB distance above which a pixel is declared foreground.
    pub foreground_threshold: u32,
    /// Whether foreground pixels also update the background (slowly absorbs
    /// stopped objects); the default is `false`, matching a surveillance
    /// setting where loitering objects must stay detected.
    pub update_foreground: bool,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            learning_rate: 0.05,
            foreground_threshold: 900, // ~17 grey levels of combined change
            update_foreground: false,
        }
    }
}

/// A per-pixel running-average background model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundModel {
    config: BackgroundConfig,
    width: usize,
    height: usize,
    /// Background estimate per pixel per channel, stored as f64 for the
    /// running average.
    estimate: Vec<[f64; 3]>,
    initialised: bool,
}

impl BackgroundModel {
    /// Creates an empty model for frames of the given size.
    pub fn new(width: usize, height: usize, config: BackgroundConfig) -> Self {
        BackgroundModel {
            config,
            width,
            height,
            estimate: vec![[0.0; 3]; width * height],
            initialised: false,
        }
    }

    /// Creates a model with the default configuration.
    pub fn with_default_config(width: usize, height: usize) -> Self {
        Self::new(width, height, BackgroundConfig::default())
    }

    /// The model configuration.
    pub fn config(&self) -> &BackgroundConfig {
        &self.config
    }

    /// Frame width the model expects.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height the model expects.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Returns `true` once at least one frame has been absorbed.
    pub fn is_initialised(&self) -> bool {
        self.initialised
    }

    /// The current background estimate rendered as an image (zeroes before
    /// initialisation).
    pub fn background_image(&self) -> RgbImage {
        let mut img = RgbImage::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let e = self.estimate[y * self.width + x];
                img.set(x, y, Rgb::new(e[0] as u8, e[1] as u8, e[2] as u8));
            }
        }
        img
    }

    /// Absorbs a frame assumed to contain only background (e.g. the warm-up
    /// frames before any person enters). The first frame initialises the
    /// estimate directly.
    ///
    /// Frames of the wrong size are ignored.
    pub fn observe_background(&mut self, frame: &RgbImage) {
        if frame.width() != self.width || frame.height() != self.height {
            return;
        }
        if !self.initialised {
            for (x, y, c) in frame.enumerate_pixels() {
                self.estimate[y * self.width + x] =
                    [f64::from(c.r), f64::from(c.g), f64::from(c.b)];
            }
            self.initialised = true;
            return;
        }
        let alpha = self.config.learning_rate;
        for (x, y, c) in frame.enumerate_pixels() {
            let e = &mut self.estimate[y * self.width + x];
            e[0] = (1.0 - alpha) * e[0] + alpha * f64::from(c.r);
            e[1] = (1.0 - alpha) * e[1] + alpha * f64::from(c.g);
            e[2] = (1.0 - alpha) * e[2] + alpha * f64::from(c.b);
        }
    }

    /// Segments a frame: returns the foreground mask and updates the model
    /// according to the configuration (background pixels always update;
    /// foreground pixels update only if `update_foreground` is set).
    ///
    /// A frame of the wrong size yields an empty (all-background) mask.
    pub fn segment(&mut self, frame: &RgbImage) -> BinaryImage {
        let mut mask = BinaryImage::new(self.width, self.height);
        if frame.width() != self.width || frame.height() != self.height {
            return mask;
        }
        if !self.initialised {
            // With no background knowledge, treat the first frame as
            // background rather than declaring everything foreground.
            self.observe_background(frame);
            return mask;
        }
        let alpha = self.config.learning_rate;
        for (x, y, c) in frame.enumerate_pixels() {
            let e = &mut self.estimate[y * self.width + x];
            let bg = Rgb::new(e[0] as u8, e[1] as u8, e[2] as u8);
            let is_foreground = bg.distance_sq(c) > self.config.foreground_threshold;
            if is_foreground {
                mask.set(x, y, true);
            }
            if !is_foreground || self.config.update_foreground {
                e[0] = (1.0 - alpha) * e[0] + alpha * f64::from(c.r);
                e[1] = (1.0 - alpha) * e[1] + alpha * f64::from(c.g);
                e[2] = (1.0 - alpha) * e[2] + alpha * f64::from(c.b);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_frame(w: usize, h: usize, colour: Rgb) -> RgbImage {
        RgbImage::filled(w, h, colour)
    }

    #[test]
    fn first_frame_initialises_estimate() {
        let mut model = BackgroundModel::with_default_config(8, 8);
        assert!(!model.is_initialised());
        model.observe_background(&flat_frame(8, 8, Rgb::new(100, 110, 120)));
        assert!(model.is_initialised());
        let bg = model.background_image();
        assert_eq!(bg.pixel(3, 3), Rgb::new(100, 110, 120));
    }

    #[test]
    fn static_scene_produces_no_foreground() {
        let mut model = BackgroundModel::with_default_config(8, 8);
        let frame = flat_frame(8, 8, Rgb::new(60, 60, 60));
        model.observe_background(&frame);
        let mask = model.segment(&frame);
        assert_eq!(mask.count_ones(), 0);
    }

    #[test]
    fn changed_pixels_are_flagged_as_foreground() {
        let mut model = BackgroundModel::with_default_config(8, 8);
        model.observe_background(&flat_frame(8, 8, Rgb::new(50, 50, 50)));
        let mut frame = flat_frame(8, 8, Rgb::new(50, 50, 50));
        frame.set(2, 3, Rgb::new(250, 20, 20));
        frame.set(3, 3, Rgb::new(250, 20, 20));
        let mask = model.segment(&frame);
        assert_eq!(mask.count_ones(), 2);
        assert_eq!(mask.get(2, 3), Some(true));
        assert_eq!(mask.get(3, 3), Some(true));
        assert_eq!(mask.get(4, 4), Some(false));
    }

    #[test]
    fn small_changes_below_threshold_are_ignored() {
        let mut model = BackgroundModel::with_default_config(4, 4);
        model.observe_background(&flat_frame(4, 4, Rgb::new(100, 100, 100)));
        let frame = flat_frame(4, 4, Rgb::new(104, 100, 97));
        let mask = model.segment(&frame);
        assert_eq!(mask.count_ones(), 0);
    }

    #[test]
    fn background_adapts_to_gradual_lighting_change() {
        let mut model = BackgroundModel::new(
            4,
            4,
            BackgroundConfig {
                learning_rate: 0.5,
                ..BackgroundConfig::default()
            },
        );
        model.observe_background(&flat_frame(4, 4, Rgb::new(100, 100, 100)));
        // Drift the scene brighter in small steps; the model should follow
        // and keep reporting background.
        for step in 1..=10 {
            let c = 100 + step * 2;
            let mask = model.segment(&flat_frame(4, 4, Rgb::new(c, c, c)));
            assert_eq!(mask.count_ones(), 0, "step {step}");
        }
        let bg = model.background_image();
        assert!(bg.pixel(0, 0).r > 110);
    }

    #[test]
    fn foreground_not_absorbed_by_default() {
        let mut model = BackgroundModel::with_default_config(4, 4);
        model.observe_background(&flat_frame(4, 4, Rgb::new(10, 10, 10)));
        let person = flat_frame(4, 4, Rgb::new(200, 0, 0));
        for _ in 0..20 {
            let mask = model.segment(&person);
            assert_eq!(mask.count_ones(), 16);
        }
    }

    #[test]
    fn foreground_absorbed_when_configured() {
        let mut model = BackgroundModel::new(
            4,
            4,
            BackgroundConfig {
                learning_rate: 0.5,
                update_foreground: true,
                ..BackgroundConfig::default()
            },
        );
        model.observe_background(&flat_frame(4, 4, Rgb::new(10, 10, 10)));
        let parked = flat_frame(4, 4, Rgb::new(200, 0, 0));
        let mut last = 16;
        for _ in 0..30 {
            last = model.segment(&parked).count_ones();
        }
        assert_eq!(last, 0, "a parked object should eventually be absorbed");
    }

    #[test]
    fn wrong_size_frames_are_ignored() {
        let mut model = BackgroundModel::with_default_config(8, 8);
        model.observe_background(&flat_frame(4, 4, Rgb::WHITE));
        assert!(!model.is_initialised());
        let mask = model.segment(&flat_frame(4, 4, Rgb::WHITE));
        assert_eq!(mask.count_ones(), 0);
        assert_eq!(mask.width(), 8);
    }

    #[test]
    fn uninitialised_segment_treats_first_frame_as_background() {
        let mut model = BackgroundModel::with_default_config(4, 4);
        let frame = flat_frame(4, 4, Rgb::new(90, 90, 90));
        let mask = model.segment(&frame);
        assert_eq!(mask.count_ones(), 0);
        assert!(model.is_initialised());
    }
}
