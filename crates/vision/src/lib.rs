//! # bsom-vision
//!
//! The surveillance substrate of the bSOM reproduction.
//!
//! The paper's identification system sits downstream of a CPU-based tracking
//! pipeline (their references \[3\], \[21\]) that segments moving objects from an
//! indoor camera, labels connected components, tracks the resulting blobs and
//! extracts a colour histogram per object per frame. That pipeline — and the
//! two-hour indoor recording it ran on — is not available, so this crate
//! provides the closest synthetic equivalent (see DESIGN.md §"Synthetic data
//! substitutions"):
//!
//! * [`scene`] — a synthetic indoor scene renderer with nine parameterised
//!   "person" appearance models, static furniture that partially occludes
//!   them, lighting drift and camera jitter.
//! * [`background`] — running-average background subtraction producing
//!   per-frame foreground masks.
//! * [`connected`] — two-pass connected-components labelling (union–find).
//! * [`blob`] — blob extraction, bounding boxes, the paper's < 768-pixel
//!   noise filter, and silhouette/histogram extraction.
//! * [`tracker`] — a greedy centroid tracker that maintains object identities
//!   across frames.
//! * [`pipeline`] — the end-to-end composition from frames to labelled
//!   768-bit binary signatures, the exact artefact the bSOM consumes.
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_vision::scene::{SceneConfig, SceneSimulator};
//! use bsom_vision::pipeline::SurveillancePipeline;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = SceneConfig::small();
//! let mut scene = SceneSimulator::new(config, &mut rng);
//! let mut pipeline = SurveillancePipeline::new(scene.config().width, scene.config().height);
//! // Warm the background model on empty frames, then process a frame with people.
//! for _ in 0..5 {
//!     let frame = scene.render_background_only(&mut rng);
//!     pipeline.observe_background(&frame);
//! }
//! let frame = scene.render_frame(&mut rng);
//! let observations = pipeline.process_frame(&frame.image);
//! // Every reported observation carries a 768-bit signature.
//! for obs in &observations {
//!     assert_eq!(obs.signature.len(), 768);
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod background;
pub mod blob;
pub mod connected;
pub mod pipeline;
pub mod scene;
pub mod tracker;

pub use background::{BackgroundConfig, BackgroundModel};
pub use blob::{Blob, BoundingBox, MIN_OBJECT_PIXELS};
pub use connected::{label_components, ComponentLabels};
pub use pipeline::{ObjectObservation, SurveillancePipeline};
pub use scene::{PersonModel, SceneConfig, SceneFrame, SceneSimulator};
pub use tracker::{Track, TrackId, Tracker, TrackerConfig};
