//! Greedy centroid tracking.
//!
//! The paper relies on "a robust tracking algorithm capable of extracting the
//! colour histogram for every moving object" (their references \[3\], \[21\]).
//! For the reproduction a deliberately simple tracker suffices: blobs are
//! matched to existing tracks by nearest centroid within a gating distance,
//! unmatched blobs open new tracks, and tracks that go unseen for a number of
//! frames are retired. The bSOM — not the tracker — is responsible for
//! *identity*; the tracker only provides frame-to-frame continuity, exactly
//! as in the paper's division of labour.

use serde::{Deserialize, Serialize};

use crate::blob::Blob;

/// Identifier of a track maintained by the [`Tracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrackId(pub u64);

impl std::fmt::Display for TrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "track-{}", self.0)
    }
}

/// Configuration of the greedy centroid tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Maximum centroid distance (in pixels) for a blob to be associated with
    /// an existing track.
    pub gating_distance: f64,
    /// Number of consecutive frames a track may go unmatched before it is
    /// retired.
    pub max_missed_frames: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            gating_distance: 40.0,
            max_missed_frames: 10,
        }
    }
}

/// One tracked object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Stable identifier of the track.
    pub id: TrackId,
    /// Last known centroid.
    pub centroid: (f64, f64),
    /// Frame index of the last successful match.
    pub last_seen_frame: u64,
    /// Number of consecutive frames without a match.
    pub missed_frames: usize,
    /// Total number of observations associated with the track.
    pub observations: usize,
}

/// A greedy nearest-centroid multi-object tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
    frame_index: u64,
}

impl Tracker {
    /// Creates a tracker with the given configuration.
    pub fn new(config: TrackerConfig) -> Self {
        Tracker {
            config,
            tracks: Vec::new(),
            next_id: 0,
            frame_index: 0,
        }
    }

    /// Creates a tracker with [`TrackerConfig::default`].
    pub fn with_default_config() -> Self {
        Self::new(TrackerConfig::default())
    }

    /// The tracker configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Currently live tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Number of frames processed so far.
    pub fn frames_processed(&self) -> u64 {
        self.frame_index
    }

    /// Associates the blobs of one frame with tracks.
    ///
    /// Returns one `(TrackId, blob_index)` pair per input blob, in blob
    /// order; blobs that opened a new track report that new id. Matching is
    /// greedy: blob/track pairs are considered in order of increasing
    /// centroid distance, closest first, subject to the gating distance.
    pub fn update(&mut self, blobs: &[Blob]) -> Vec<(TrackId, usize)> {
        let frame = self.frame_index;
        self.frame_index += 1;

        // All candidate (distance, track_idx, blob_idx) pairs within the gate.
        let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
        for (ti, track) in self.tracks.iter().enumerate() {
            for (bi, blob) in blobs.iter().enumerate() {
                let dx = track.centroid.0 - blob.centroid.0;
                let dy = track.centroid.1 - blob.centroid.1;
                let d = (dx * dx + dy * dy).sqrt();
                if d <= self.config.gating_distance {
                    candidates.push((d, ti, bi));
                }
            }
        }
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut track_taken = vec![false; self.tracks.len()];
        let mut blob_taken = vec![false; blobs.len()];
        let mut assignment: Vec<Option<usize>> = vec![None; blobs.len()];
        for (_, ti, bi) in candidates {
            if track_taken[ti] || blob_taken[bi] {
                continue;
            }
            track_taken[ti] = true;
            blob_taken[bi] = true;
            assignment[bi] = Some(ti);
        }

        // Update matched tracks, create new tracks for unmatched blobs.
        let mut result = Vec::with_capacity(blobs.len());
        for (bi, blob) in blobs.iter().enumerate() {
            match assignment[bi] {
                Some(ti) => {
                    let track = &mut self.tracks[ti];
                    track.centroid = blob.centroid;
                    track.last_seen_frame = frame;
                    track.missed_frames = 0;
                    track.observations += 1;
                    result.push((track.id, bi));
                }
                None => {
                    let id = TrackId(self.next_id);
                    self.next_id += 1;
                    self.tracks.push(Track {
                        id,
                        centroid: blob.centroid,
                        last_seen_frame: frame,
                        missed_frames: 0,
                        observations: 1,
                    });
                    result.push((id, bi));
                }
            }
        }

        // Age unmatched tracks and retire stale ones.
        let max_missed = self.config.max_missed_frames;
        for (ti, track) in self.tracks.iter_mut().enumerate() {
            if ti < track_taken.len() && track_taken[ti] {
                continue;
            }
            if track.last_seen_frame != frame {
                track.missed_frames += 1;
            }
        }
        self.tracks.retain(|t| t.missed_frames <= max_missed);

        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blob::BoundingBox;
    use bsom_signature::Silhouette;

    fn blob_at(x: f64, y: f64) -> Blob {
        Blob {
            component: 1,
            area: 1000,
            bbox: BoundingBox {
                min_x: x as usize,
                min_y: y as usize,
                max_x: x as usize + 10,
                max_y: y as usize + 10,
            },
            centroid: (x, y),
            silhouette: Silhouette::new(1, 1),
        }
    }

    #[test]
    fn first_frame_creates_one_track_per_blob() {
        let mut tracker = Tracker::with_default_config();
        let ids = tracker.update(&[blob_at(10.0, 10.0), blob_at(100.0, 100.0)]);
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0].0, ids[1].0);
        assert_eq!(tracker.tracks().len(), 2);
    }

    #[test]
    fn nearby_blob_keeps_the_same_track_id() {
        let mut tracker = Tracker::with_default_config();
        let first = tracker.update(&[blob_at(10.0, 10.0)]);
        let second = tracker.update(&[blob_at(14.0, 12.0)]);
        assert_eq!(first[0].0, second[0].0);
        assert_eq!(tracker.tracks()[0].observations, 2);
    }

    #[test]
    fn distant_blob_opens_a_new_track() {
        let mut tracker = Tracker::with_default_config();
        let first = tracker.update(&[blob_at(10.0, 10.0)]);
        let second = tracker.update(&[blob_at(500.0, 500.0)]);
        assert_ne!(first[0].0, second[0].0);
        assert_eq!(tracker.tracks().len(), 2);
    }

    #[test]
    fn two_objects_keep_distinct_identities_when_both_move() {
        let mut tracker = Tracker::with_default_config();
        let f1 = tracker.update(&[blob_at(10.0, 10.0), blob_at(200.0, 10.0)]);
        let f2 = tracker.update(&[blob_at(15.0, 12.0), blob_at(195.0, 14.0)]);
        assert_eq!(f1[0].0, f2[0].0);
        assert_eq!(f1[1].0, f2[1].0);
        assert_ne!(f2[0].0, f2[1].0);
    }

    #[test]
    fn greedy_matching_prefers_closest_pair() {
        let mut tracker = Tracker::with_default_config();
        tracker.update(&[blob_at(0.0, 0.0), blob_at(30.0, 0.0)]);
        // Both new blobs are within gating range of both tracks; the closest
        // pairs are (track0, blob at 2) and (track1, blob at 28).
        let ids = tracker.update(&[blob_at(28.0, 0.0), blob_at(2.0, 0.0)]);
        let t0 = tracker.tracks()[0].id;
        let t1 = tracker.tracks()[1].id;
        assert_eq!(ids[0].0, t1);
        assert_eq!(ids[1].0, t0);
    }

    #[test]
    fn track_is_retired_after_max_missed_frames() {
        let config = TrackerConfig {
            gating_distance: 40.0,
            max_missed_frames: 2,
        };
        let mut tracker = Tracker::new(config);
        tracker.update(&[blob_at(10.0, 10.0)]);
        assert_eq!(tracker.tracks().len(), 1);
        for _ in 0..3 {
            tracker.update(&[]);
        }
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn reappearing_object_gets_a_new_track_after_retirement() {
        let config = TrackerConfig {
            gating_distance: 40.0,
            max_missed_frames: 1,
        };
        let mut tracker = Tracker::new(config);
        let first = tracker.update(&[blob_at(10.0, 10.0)]);
        tracker.update(&[]);
        tracker.update(&[]);
        let second = tracker.update(&[blob_at(10.0, 10.0)]);
        assert_ne!(first[0].0, second[0].0);
    }

    #[test]
    fn frames_processed_counts_updates() {
        let mut tracker = Tracker::with_default_config();
        assert_eq!(tracker.frames_processed(), 0);
        tracker.update(&[]);
        tracker.update(&[blob_at(1.0, 1.0)]);
        assert_eq!(tracker.frames_processed(), 2);
    }

    #[test]
    fn track_id_display() {
        assert_eq!(TrackId(7).to_string(), "track-7");
    }
}
