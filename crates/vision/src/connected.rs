//! Two-pass connected-components labelling.
//!
//! The paper's segmentation stage groups foreground pixels into objects with
//! connected-components analysis (their reference \[2\] accelerates this on
//! FPGA; here a classic two-pass union–find implementation suffices, since in
//! this reproduction the stage runs on the CPU side exactly as in the paper's
//! §I pipeline description).

use bsom_signature::BinaryImage;

/// The result of labelling a foreground mask: one `u32` label per pixel
/// (0 = background, labels are 1-based and contiguous).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    width: usize,
    height: usize,
    labels: Vec<u32>,
    component_count: usize,
}

impl ComponentLabels {
    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of connected components found (excluding background).
    pub fn component_count(&self) -> usize {
        self.component_count
    }

    /// The label at `(x, y)`: 0 for background, otherwise a 1-based component
    /// id. Out-of-bounds coordinates return 0.
    pub fn label(&self, x: usize, y: usize) -> u32 {
        if x >= self.width || y >= self.height {
            return 0;
        }
        self.labels[y * self.width + x]
    }

    /// The raw label buffer in row-major order.
    pub fn as_slice(&self) -> &[u32] {
        &self.labels
    }

    /// Pixel count of every component, indexed by `label - 1`.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.component_count];
        for &l in &self.labels {
            if l > 0 {
                sizes[(l - 1) as usize] += 1;
            }
        }
        sizes
    }
}

/// Union–find with path compression and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        // Slot 0 is reserved for background and never unioned.
        UnionFind {
            parent: vec![0],
            size: vec![0],
        }
    }

    fn make_set(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Labels the connected components of a binary foreground mask using
/// 8-connectivity (a diagonal touch joins two pixels into one object, which
/// is the conventional choice for silhouettes).
///
/// Returns per-pixel labels with component ids renumbered contiguously from 1
/// in first-encounter order.
pub fn label_components(mask: &BinaryImage) -> ComponentLabels {
    let width = mask.width();
    let height = mask.height();
    let mut labels = vec![0u32; width * height];
    let mut uf = UnionFind::new();

    // First pass: provisional labels + equivalences.
    for y in 0..height {
        for x in 0..width {
            if !mask.get(x, y).unwrap_or(false) {
                continue;
            }
            // Previously-visited 8-neighbours: W, NW, N, NE.
            let mut neighbour_labels = [0u32; 4];
            let mut count = 0;
            let mut push = |l: u32| {
                if l != 0 {
                    neighbour_labels[count] = l;
                    count += 1;
                }
            };
            if x > 0 {
                push(labels[y * width + x - 1]);
            }
            if y > 0 {
                if x > 0 {
                    push(labels[(y - 1) * width + x - 1]);
                }
                push(labels[(y - 1) * width + x]);
                if x + 1 < width {
                    push(labels[(y - 1) * width + x + 1]);
                }
            }
            let label = if count == 0 {
                uf.make_set()
            } else {
                let min = *neighbour_labels[..count].iter().min().unwrap();
                for &l in &neighbour_labels[..count] {
                    uf.union(min, l);
                }
                min
            };
            labels[y * width + x] = label;
        }
    }

    // Second pass: resolve equivalences and renumber contiguously.
    let mut remap: Vec<u32> = vec![0; uf.parent.len()];
    let mut next = 0u32;
    for l in labels.iter_mut() {
        if *l == 0 {
            continue;
        }
        let root = uf.find(*l);
        if remap[root as usize] == 0 {
            next += 1;
            remap[root as usize] = next;
        }
        *l = remap[root as usize];
    }

    ComponentLabels {
        width,
        height,
        labels,
        component_count: next as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_rows(rows: &[&str]) -> BinaryImage {
        let height = rows.len();
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut mask = BinaryImage::new(width, height);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                mask.set(x, y, c == '#');
            }
        }
        mask
    }

    #[test]
    fn empty_mask_has_no_components() {
        let mask = BinaryImage::new(10, 10);
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 0);
        assert!(labels.as_slice().iter().all(|&l| l == 0));
        assert!(labels.component_sizes().is_empty());
    }

    #[test]
    fn single_blob_is_one_component() {
        let mask = mask_from_rows(&["....", ".##.", ".##.", "...."]);
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 1);
        assert_eq!(labels.component_sizes(), vec![4]);
        assert_eq!(labels.label(1, 1), 1);
        assert_eq!(labels.label(0, 0), 0);
    }

    #[test]
    fn separate_blobs_get_distinct_labels() {
        let mask = mask_from_rows(&["##...##", "##...##", ".......", "..###.."]);
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 3);
        let sizes = labels.component_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        assert_ne!(labels.label(0, 0), labels.label(6, 0));
        assert_ne!(labels.label(0, 0), labels.label(3, 3));
    }

    #[test]
    fn diagonal_touch_merges_with_eight_connectivity() {
        let mask = mask_from_rows(&["#..", ".#.", "..#"]);
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 1);
    }

    #[test]
    fn u_shape_equivalence_is_resolved() {
        // A 'U' shape first appears as two columns that only merge at the
        // bottom row — the classic case requiring label equivalence.
        let mask = mask_from_rows(&["#...#", "#...#", "#...#", "#####"]);
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 1);
        assert_eq!(labels.component_sizes(), vec![11]);
        assert_eq!(labels.label(0, 0), labels.label(4, 0));
    }

    #[test]
    fn w_shape_with_multiple_equivalences() {
        let mask = mask_from_rows(&["#.#.#", "#.#.#", "#####"]);
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 1);
    }

    #[test]
    fn labels_are_contiguous_from_one() {
        let mask = mask_from_rows(&["#.#.#.#", ".......", "#.#.#.#"]);
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 8);
        let mut seen: Vec<u32> = labels
            .as_slice()
            .iter()
            .copied()
            .filter(|&l| l > 0)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (1..=8).collect::<Vec<u32>>());
    }

    #[test]
    fn out_of_bounds_label_is_background() {
        let mask = mask_from_rows(&["##", "##"]);
        let labels = label_components(&mask);
        assert_eq!(labels.label(5, 5), 0);
        assert_eq!(labels.width(), 2);
        assert_eq!(labels.height(), 2);
    }

    #[test]
    fn full_mask_is_single_component() {
        let mut mask = BinaryImage::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                mask.set(x, y, true);
            }
        }
        let labels = label_components(&mask);
        assert_eq!(labels.component_count(), 1);
        assert_eq!(labels.component_sizes(), vec![256]);
    }
}
