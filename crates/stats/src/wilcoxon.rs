//! The Wilcoxon rank-sum (Mann–Whitney U) test.
//!
//! Table II of the paper compares the ten repeated recognition accuracies of
//! the cSOM and the bSOM at each iteration budget with a one-tailed Wilcoxon
//! rank-sum test at the 5 % significance level, reporting the mean rank of
//! each sample, the z statistic and the direction of any significant
//! difference. This module reproduces that analysis using the normal
//! approximation with tie correction (the samples have n = 10 each, where the
//! normal approximation is the standard choice).

use serde::{Deserialize, Serialize};

use crate::rank::rank_sum;

/// The alternative hypothesis of the test, phrased about the *first* sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alternative {
    /// H₁: the first sample tends to be **smaller** than the second.
    Less,
    /// H₁: the first sample tends to be **larger** than the second.
    Greater,
    /// H₁: the samples differ in either direction.
    TwoSided,
}

/// Which sample a significance decision favours, mirroring the ≻ / ≺ / −
/// symbols of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignificanceDirection {
    /// The first sample is significantly higher.
    FirstHigher,
    /// The second sample is significantly higher.
    SecondHigher,
    /// No significant difference at the requested level.
    NotSignificant,
}

/// The outcome of a Wilcoxon rank-sum test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilcoxonResult {
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
    /// Rank sum of the first sample under joint average ranking.
    pub rank_sum1: f64,
    /// Rank sum of the second sample under joint average ranking.
    pub rank_sum2: f64,
    /// Mean rank of the first sample (the quantity reported in Table II).
    pub mean_rank1: f64,
    /// Mean rank of the second sample.
    pub mean_rank2: f64,
    /// Mann–Whitney U statistic of the first sample.
    pub u1: f64,
    /// Mann–Whitney U statistic of the second sample.
    pub u2: f64,
    /// Normal-approximation z statistic (tie-corrected, no continuity
    /// correction), signed so that a negative z means the first sample ranks
    /// lower.
    pub z: f64,
    /// p-value under the requested alternative.
    pub p_value: f64,
    /// The alternative hypothesis the p-value corresponds to.
    pub alternative: Alternative,
}

impl WilcoxonResult {
    /// Classifies the outcome into the paper's three-way direction symbol at
    /// significance level `alpha`, using one-tailed reasoning in both
    /// directions: the sample with the higher mean rank is declared
    /// significantly higher when the corresponding one-tailed p-value is
    /// below `alpha`.
    pub fn direction(&self, alpha: f64) -> SignificanceDirection {
        // One-tailed p-value for "first lower" is Φ(z); for "first higher" it
        // is 1 − Φ(z). Recompute from z so the answer does not depend on the
        // alternative the caller originally asked for.
        let p_first_lower = normal_cdf(self.z);
        let p_first_higher = 1.0 - p_first_lower;
        if p_first_higher < alpha {
            SignificanceDirection::FirstHigher
        } else if p_first_lower < alpha {
            SignificanceDirection::SecondHigher
        } else {
            SignificanceDirection::NotSignificant
        }
    }
}

/// Runs the Wilcoxon rank-sum test on two samples.
///
/// Uses the normal approximation with tie correction and average ranks. For
/// the paper's sample sizes (10 vs 10) this matches the textbook large-sample
/// treatment. Empty samples produce `z = 0` and `p = 1` (no evidence).
///
/// # Examples
///
/// ```rust
/// use bsom_stats::{wilcoxon_rank_sum, Alternative, SignificanceDirection};
///
/// let low = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let high = [10.0, 11.0, 12.0, 13.0, 14.0];
/// let r = wilcoxon_rank_sum(&low, &high, Alternative::Less);
/// assert!(r.p_value < 0.01);
/// assert_eq!(r.direction(0.05), SignificanceDirection::SecondHigher);
/// ```
pub fn wilcoxon_rank_sum(a: &[f64], b: &[f64], alternative: Alternative) -> WilcoxonResult {
    let n1 = a.len();
    let n2 = b.len();
    let (r1, r2) = rank_sum(a, b);
    let mean_rank1 = if n1 == 0 { 0.0 } else { r1 / n1 as f64 };
    let mean_rank2 = if n2 == 0 { 0.0 } else { r2 / n2 as f64 };

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = r1 - n1f * (n1f + 1.0) / 2.0;
    let u2 = r2 - n2f * (n2f + 1.0) / 2.0;

    if n1 == 0 || n2 == 0 {
        return WilcoxonResult {
            n1,
            n2,
            rank_sum1: r1,
            rank_sum2: r2,
            mean_rank1,
            mean_rank2,
            u1,
            u2,
            z: 0.0,
            p_value: 1.0,
            alternative,
        };
    }

    let n = n1f + n2f;
    // Tie correction: sum over tie groups of (t³ − t).
    let mut combined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    combined.sort_by(f64::total_cmp);
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < combined.len() {
        let mut j = i + 1;
        while j < combined.len() && combined[j] == combined[i] {
            j += 1;
        }
        let t = (j - i) as f64;
        tie_term += t * t * t - t;
        i = j;
    }

    let mu_u = n1f * n2f / 2.0;
    let variance = if n > 1.0 {
        n1f * n2f / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)))
    } else {
        0.0
    };
    let z = if variance > 0.0 {
        (u1 - mu_u) / variance.sqrt()
    } else {
        0.0
    };

    let p_value = match alternative {
        Alternative::Less => normal_cdf(z),
        Alternative::Greater => 1.0 - normal_cdf(z),
        Alternative::TwoSided => 2.0 * normal_cdf(-z.abs()),
    }
    .clamp(0.0, 1.0);

    WilcoxonResult {
        n1,
        n2,
        rank_sum1: r1,
        rank_sum2: r2,
        mean_rank1,
        mean_rank2,
        u1,
        u2,
        z,
        p_value,
        alternative,
    }
}

/// Standard normal cumulative distribution function Φ(x).
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation of `erf`
/// (absolute error below 1.5 × 10⁻⁷), ample for the 5 % significance
/// decisions of Table II.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!((normal_cdf(1.6449) - 0.95).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999_999);
        assert!(normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn perfectly_separated_samples_are_significant() {
        let low: Vec<f64> = (1..=10).map(f64::from).collect();
        let high: Vec<f64> = (101..=110).map(f64::from).collect();
        let r = wilcoxon_rank_sum(&low, &high, Alternative::Less);
        // Mean ranks 5.5 and 15.5, exactly the Table II pattern for a clean
        // separation of ten-vs-ten repetitions.
        assert!((r.mean_rank1 - 5.5).abs() < 1e-12);
        assert!((r.mean_rank2 - 15.5).abs() < 1e-12);
        assert!(r.z < -3.0);
        assert!(r.p_value < 0.001);
        assert_eq!(r.direction(0.05), SignificanceDirection::SecondHigher);
        // U statistics are complementary: U1 + U2 = n1 * n2.
        assert!((r.u1 + r.u2 - 100.0).abs() < 1e-12);
        assert_eq!(r.u1, 0.0);
    }

    #[test]
    fn reversed_samples_flip_the_direction() {
        let low: Vec<f64> = (1..=10).map(f64::from).collect();
        let high: Vec<f64> = (101..=110).map(f64::from).collect();
        let r = wilcoxon_rank_sum(&high, &low, Alternative::Greater);
        assert!(r.z > 3.0);
        assert!(r.p_value < 0.001);
        assert_eq!(r.direction(0.05), SignificanceDirection::FirstHigher);
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [5.0; 10];
        let b = [5.0; 10];
        let r = wilcoxon_rank_sum(&a, &b, Alternative::TwoSided);
        assert_eq!(r.z, 0.0);
        assert!(r.p_value > 0.9);
        assert_eq!(r.direction(0.05), SignificanceDirection::NotSignificant);
        assert_eq!(r.mean_rank1, r.mean_rank2);
    }

    #[test]
    fn overlapping_samples_are_not_significant() {
        let a = [10.0, 12.0, 11.0, 13.0, 9.0];
        let b = [10.5, 11.5, 12.5, 9.5, 13.5];
        let r = wilcoxon_rank_sum(&a, &b, Alternative::TwoSided);
        assert!(r.p_value > 0.05);
        assert_eq!(r.direction(0.05), SignificanceDirection::NotSignificant);
    }

    #[test]
    fn known_mann_whitney_example() {
        // Classic example: a = [1, 2, 3], b = [4, 5, 6] -> U1 = 0, U2 = 9.
        let r = wilcoxon_rank_sum(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], Alternative::TwoSided);
        assert_eq!(r.u1, 0.0);
        assert_eq!(r.u2, 9.0);
        assert_eq!(r.rank_sum1, 6.0);
        assert_eq!(r.rank_sum2, 15.0);
        // z = (0 - 4.5) / sqrt(3*3*7/12) = -4.5 / 2.2913 = -1.964
        assert!((r.z + 1.9640).abs() < 1e-3);
    }

    #[test]
    fn tie_correction_reduces_variance() {
        // With heavy ties the tie-corrected variance is smaller, so |z| is
        // larger than the uncorrected value would be; sanity-check that ties
        // do not blow up the computation and the direction is still detected.
        let a = [1.0, 1.0, 1.0, 2.0, 2.0];
        let b = [2.0, 3.0, 3.0, 3.0, 4.0];
        let r = wilcoxon_rank_sum(&a, &b, Alternative::Less);
        assert!(r.z < 0.0);
        assert!(r.p_value < 0.05);
    }

    #[test]
    fn empty_samples_yield_no_evidence() {
        let r = wilcoxon_rank_sum(&[], &[1.0, 2.0], Alternative::TwoSided);
        assert_eq!(r.z, 0.0);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.direction(0.05), SignificanceDirection::NotSignificant);
        let r = wilcoxon_rank_sum(&[], &[], Alternative::Less);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn one_tailed_p_values_are_complementary() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let less = wilcoxon_rank_sum(&a, &b, Alternative::Less);
        let greater = wilcoxon_rank_sum(&a, &b, Alternative::Greater);
        assert!((less.p_value + greater.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_identical_values_gives_zero_variance_and_z() {
        let a = [2.0, 2.0];
        let b = [2.0, 2.0];
        let r = wilcoxon_rank_sum(&a, &b, Alternative::Less);
        assert_eq!(r.z, 0.0);
    }
}
