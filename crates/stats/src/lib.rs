//! # bsom-stats
//!
//! Statistical machinery for the bSOM reproduction: the one-tailed Wilcoxon
//! rank-sum (Mann–Whitney) test used by the paper's Table II to compare the
//! per-repetition recognition accuracies of the cSOM and the bSOM, plus the
//! small set of descriptive statistics used by the evaluation harness.
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_stats::{wilcoxon_rank_sum, Alternative};
//!
//! // Ten repetitions of each algorithm at one iteration budget.
//! let csom = [81.0, 82.0, 81.5, 80.9, 82.2, 81.7, 81.3, 82.0, 81.1, 81.9];
//! let bsom = [84.0, 84.5, 84.2, 83.9, 85.0, 84.7, 84.3, 84.9, 84.1, 84.6];
//! let test = wilcoxon_rank_sum(&csom, &bsom, Alternative::Less);
//! assert!(test.p_value < 0.05); // bSOM significantly higher
//! assert!(test.z < 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod descriptive;
pub mod rank;
pub mod wilcoxon;

pub use descriptive::{mean, population_std_dev, sample_std_dev, Summary};
pub use rank::{average_ranks, rank_sum};
pub use wilcoxon::{wilcoxon_rank_sum, Alternative, SignificanceDirection, WilcoxonResult};
