//! Descriptive statistics used when summarising repeated experiment runs.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation (divides by `n`). Returns 0.0 for fewer than
/// one value.
pub fn population_std_dev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Sample standard deviation (divides by `n − 1`). Returns 0.0 for fewer than
/// two values.
pub fn sample_std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// A five-number-style summary of a set of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of measurements.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest measurement.
    pub min: f64,
    /// Largest measurement.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice of measurements. Returns the default (all-zero)
    /// summary for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary::default();
        }
        Summary {
            count: values.len(),
            mean: mean(values),
            std_dev: sample_std_dev(values),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[7.0]), 7.0);
    }

    #[test]
    fn std_devs_of_known_values() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_std_dev(&data) - 2.0).abs() < 1e-12);
        assert!((sample_std_dev(&data) - 2.138089935299395).abs() < 1e-12);
    }

    #[test]
    fn std_dev_degenerate_inputs() {
        assert_eq!(population_std_dev(&[]), 0.0);
        assert_eq!(sample_std_dev(&[]), 0.0);
        assert_eq!(sample_std_dev(&[3.0]), 0.0);
        assert_eq!(population_std_dev(&[3.0]), 0.0);
        assert_eq!(sample_std_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn summary_of_values() {
        let s = Summary::of(&[1.0, 5.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }
}
