//! Ranking utilities shared by the rank-based tests.

/// Assigns average ranks (1-based) to the values, giving tied values the mean
/// of the ranks they span — the standard mid-rank convention used by the
/// Wilcoxon rank-sum test.
///
/// Non-finite values are ranked by their IEEE ordering via `total_cmp`, which
/// keeps the function total; callers that care should filter NaNs first.
///
/// # Examples
///
/// ```rust
/// use bsom_stats::average_ranks;
///
/// let ranks = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
/// assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));

    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run of ties [i, j).
        let mut j = i + 1;
        while j < n && values[order[j]] == values[order[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// The rank sums of two samples ranked jointly with average ranks.
///
/// Returns `(rank_sum_a, rank_sum_b)`.
pub fn rank_sum(a: &[f64], b: &[f64]) -> (f64, f64) {
    let combined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    let ranks = average_ranks(&combined);
    let sum_a: f64 = ranks[..a.len()].iter().sum();
    let sum_b: f64 = ranks[a.len()..].iter().sum();
    (sum_a, sum_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties_are_a_permutation() {
        let ranks = average_ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(ranks, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_use_mid_ranks() {
        let ranks = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(ranks, vec![2.0, 2.0, 2.0]);
        let ranks = average_ranks(&[1.0, 2.0, 2.0, 4.0, 4.0, 4.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn ranks_of_empty_input() {
        assert!(average_ranks(&[]).is_empty());
    }

    #[test]
    fn rank_sums_total_is_n_times_n_plus_one_over_two() {
        let a = [1.0, 7.0, 3.0, 9.0];
        let b = [2.0, 8.0, 4.0];
        let (sa, sb) = rank_sum(&a, &b);
        let n = (a.len() + b.len()) as f64;
        assert!((sa + sb - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn rank_sum_separated_samples() {
        // All of `a` below all of `b`: a gets ranks 1..=3, b gets 4..=6.
        let (sa, sb) = rank_sum(&[1.0, 2.0, 3.0], &[10.0, 11.0, 12.0]);
        assert_eq!(sa, 6.0);
        assert_eq!(sb, 15.0);
    }

    #[test]
    fn rank_sum_with_one_empty_sample() {
        let (sa, sb) = rank_sum(&[], &[1.0, 2.0]);
        assert_eq!(sa, 0.0);
        assert_eq!(sb, 3.0);
    }
}
