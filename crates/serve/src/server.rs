//! The TCP front-end: listener, per-connection reader/writer threads, and
//! graceful drain.
//!
//! Thread topology (all plain `std::net` + `std::thread`, no async runtime):
//!
//! * one **accept** thread polls a non-blocking listener so it can also
//!   observe the draining flag;
//! * each connection gets a **reader** thread (decodes frames, submits
//!   classify jobs to the shared [`MicroBatcher`]) and a **writer** thread
//!   (serializes responses strictly in request order — what makes client
//!   pipelining safe, and pipelining is what gives the scheduler something
//!   to coalesce);
//! * the scheduler thread itself, owned by [`MicroBatcher`].
//!
//! A graceful drain — triggered over the wire by
//! [`WireMessage::DrainRequest`] or locally by [`Server::drain`] — stops
//! accepting connections, rejects new classify requests with a typed
//! [`ErrorCode::Draining`] response, flushes every request already admitted
//! (passing the `service.drain` failpoint first, so the fault suite can
//! panic a worker mid-flush), runs the optional drain hook (the `bsom-serve`
//! binary uses it to [`write_checkpoint`]) and only then reports a
//! [`DrainSummary`].
//!
//! [`write_checkpoint`]: bsom_engine::Trainer::write_checkpoint

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{Builder, JoinHandle};
use std::time::Duration;
use std::{fmt, io};

use bsom_engine::{faultpoint, EngineError, MapRegistry, SomService, TenantId};
use bsom_som::ObjectLabel;

use crate::scheduler::{BatchReply, ClassifyJob, MicroBatcher, SchedulerConfig, SchedulerSnapshot};
use crate::wire::{self, DrainSummary, ErrorCode, WireHealth, WireMessage};

/// Runs after the in-flight flush of a graceful drain; returns whether it
/// wrote a checkpoint ([`DrainSummary::checkpoint_written`]).
pub type DrainHook = Box<dyn FnOnce() -> bool + Send>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The micro-batching scheduler's configuration.
    pub scheduler: SchedulerConfig,
    /// `TCP_NODELAY` on accepted connections. Defaults to `true`: the
    /// scheduler does its own batching, Nagle would only stack delays.
    pub nodelay: bool,
    /// Most responses a connection may have queued or in flight; a client
    /// pipelining past this is backpressured at the socket.
    pub max_pipelined: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scheduler: SchedulerConfig::default(),
            nodelay: true,
            max_pipelined: 1024,
        }
    }
}

/// How often the accept loop re-checks the draining flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A response slot in a connection's ordered writer queue.
enum Pending {
    /// Already resolved (health, drain, errors, admission sheds).
    Ready(WireMessage),
    /// A classify job still in the scheduler; the writer blocks here, which
    /// is exactly what keeps responses in request order.
    Wait(Receiver<BatchReply>),
}

/// What the front-end serves: one map, or many behind a registry.
enum Backend {
    /// The classic single-map path: classify requests flow through the
    /// micro-batching scheduler; tenant-addressed and train frames are
    /// rejected typed.
    Single {
        service: Arc<SomService>,
        batcher: MicroBatcher,
    },
    /// The multi-tenant path: classify requests route to
    /// [`MapRegistry::classify`] per tenant (a frame without a tenant id
    /// goes to `default_tenant`), train frames feed the tenant's pending
    /// queue, and a tenant-addressed drain flushes just that tenant.
    /// Classification runs inline on the connection's reader thread —
    /// cross-tenant batches cannot coalesce, so there is no scheduler.
    Registry {
        registry: Arc<MapRegistry>,
        default_tenant: TenantId,
    },
}

struct ServerShared {
    backend: Backend,
    config: ServeConfig,
    draining: AtomicBool,
    drain_done: Mutex<Option<DrainSummary>>,
    drain_cv: Condvar,
    drain_hook: Mutex<Option<DrainHook>>,
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerShared")
            .field("draining", &self.draining.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// A running serving front-end. Dropping the handle closes the listener and
/// every connection (after in-flight batches resolve); use
/// [`drain`](Self::drain) + [`join`](Self::join) for the graceful path.
#[derive(Debug)]
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    closed: bool,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port — see
    /// [`local_addr`](Self::local_addr)) and starts serving `service`.
    ///
    /// `drain_hook`, if given, runs during the graceful drain after the
    /// in-flight flush; the `bsom-serve` binary passes a closure that stops
    /// its training loop and writes a checkpoint.
    pub fn bind(
        service: Arc<SomService>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        drain_hook: Option<DrainHook>,
    ) -> io::Result<Server> {
        let batcher = MicroBatcher::new(service.recognizer(), config.scheduler.clone());
        Self::bind_backend(
            Backend::Single { service, batcher },
            addr,
            config,
            drain_hook,
        )
    }

    /// Binds `addr` and serves every tenant of `registry`. Frames without a
    /// tenant id (including every format-1 frame from a pre-tenant client)
    /// route to `default_tenant`, which must already exist in the registry.
    ///
    /// The server only *routes*: it feeds train requests into tenants'
    /// pending queues and answers classifies from published snapshots.
    /// Driving [`MapRegistry::train_tick`] is the embedder's job (the
    /// `bsom-serve` binary runs a training pump thread), except that a
    /// tenant-addressed drain flushes that tenant synchronously.
    pub fn bind_registry(
        registry: Arc<MapRegistry>,
        default_tenant: impl Into<TenantId>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        drain_hook: Option<DrainHook>,
    ) -> io::Result<Server> {
        let backend = Backend::Registry {
            registry,
            default_tenant: default_tenant.into(),
        };
        Self::bind_backend(backend, addr, config, drain_hook)
    }

    fn bind_backend(
        backend: Backend,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        drain_hook: Option<DrainHook>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            backend,
            config,
            draining: AtomicBool::new(false),
            drain_done: Mutex::new(None),
            drain_cv: Condvar::new(),
            drain_hook: Mutex::new(drain_hook),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = Builder::new()
            .name("bsom-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            closed: false,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The health report, as served by the wire endpoint.
    pub fn health(&self) -> WireHealth {
        build_health(&self.shared)
    }

    /// The scheduler's counters. A registry-backed server has no scheduler
    /// (cross-tenant batches cannot coalesce) and reports all zeros.
    pub fn scheduler_snapshot(&self) -> SchedulerSnapshot {
        match &self.shared.backend {
            Backend::Single { batcher, .. } => batcher.snapshot(),
            Backend::Registry { .. } => SchedulerSnapshot::default(),
        }
    }

    /// Drains gracefully: stop accepting, flush admitted requests, run the
    /// drain hook. Idempotent — concurrent callers all get the one summary.
    pub fn drain(&self) -> DrainSummary {
        begin_drain(&self.shared)
    }

    /// Blocks until a drain (wire- or locally-triggered) has completed.
    pub fn wait_until_drained(&self) -> DrainSummary {
        let mut done = lock_recovering(&self.shared.drain_done);
        loop {
            if let Some(summary) = done.as_ref() {
                return summary.clone();
            }
            done = self
                .shared
                .drain_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the server: joins the accept loop, lets every connection
    /// writer finish its queued responses, then joins the connection
    /// threads. Call after [`drain`](Self::drain) for a graceful exit.
    pub fn join(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        // Stop the accept loop (it polls the flag).
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // Half-close every connection: readers see EOF and exit, writers
        // first flush whatever responses are still queued (in-flight batches
        // resolve by deadline), then exit.
        for conn in lock_recovering(&self.shared.conns).drain(..) {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *lock_recovering(&self.shared.conn_threads));
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                if let Err(error) = spawn_connection(&shared, stream) {
                    // Out of descriptors or threads: drop the connection,
                    // keep serving the ones we have.
                    let _ = error;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Listener failure: stop accepting; existing connections
                // keep draining through their own threads.
                return;
            }
        }
    }
}

fn spawn_connection(shared: &Arc<ServerShared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    if shared.config.nodelay {
        stream.set_nodelay(true)?;
    }
    let read_half = stream.try_clone()?;
    let write_half = stream.try_clone()?;
    lock_recovering(&shared.conns).push(stream);
    let (out_tx, out_rx) = mpsc::sync_channel::<Pending>(shared.config.max_pipelined.max(1));
    let reader_shared = Arc::clone(shared);
    let reader = Builder::new()
        .name("bsom-serve-conn-reader".to_string())
        .spawn(move || read_loop(read_half, reader_shared, out_tx))?;
    let writer = Builder::new()
        .name("bsom-serve-conn-writer".to_string())
        .spawn(move || write_loop(write_half, out_rx))?;
    let mut threads = lock_recovering(&shared.conn_threads);
    threads.push(reader);
    threads.push(writer);
    Ok(())
}

fn build_health(shared: &ServerShared) -> WireHealth {
    let (service, scheduler, snapshot_version) = match &shared.backend {
        Backend::Single { service, batcher } => {
            (service.health(), batcher.snapshot(), service.version())
        }
        Backend::Registry {
            registry,
            default_tenant,
        } => (
            registry.health(),
            SchedulerSnapshot::default(),
            registry.version(default_tenant.clone()).unwrap_or(0),
        ),
    };
    WireHealth {
        snapshot_version,
        workers_configured: service.workers_configured as u64,
        workers_alive: service.workers_alive as u64,
        engine_queue_depth: service.queue_depth as u64,
        engine_queue_capacity: service.queue_capacity as u64,
        worker_panics: service.worker_panics,
        worker_respawns: service.worker_respawns,
        scheduler_pending: scheduler.pending as u64,
        scheduler_capacity: scheduler.queue_capacity as u64,
        batches_dispatched: scheduler.batches_dispatched,
        requests_coalesced: scheduler.requests_coalesced,
        signatures_dispatched: scheduler.signatures_dispatched,
        requests_shed: scheduler.requests_shed,
        coalesce_delay_micros: scheduler.delay_micros,
        draining: shared.draining.load(Ordering::SeqCst),
        last_panic: service.last_panic,
    }
}

/// The one drain path. First caller executes it; everyone else blocks until
/// the summary exists.
fn begin_drain(shared: &ServerShared) -> DrainSummary {
    if shared.draining.swap(true, Ordering::SeqCst) {
        // Someone else is draining (or already drained): wait for the
        // summary.
        let mut done = lock_recovering(&shared.drain_done);
        loop {
            if let Some(summary) = done.as_ref() {
                return summary.clone();
            }
            done = shared
                .drain_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    // New classify requests are now rejected and the accept loop is on its
    // way out; everything already admitted flushes below.
    faultpoint::hit("service.drain");
    let (requests_flushed, final_version) = match &shared.backend {
        Backend::Single { service, batcher } => (batcher.drain(), service.version()),
        Backend::Registry {
            registry,
            default_tenant,
        } => {
            // Flush every tenant's pending training work; a tenant whose
            // flush fails (torn spill file, poisoned trainer) keeps its
            // queue — the drain is best-effort per tenant, never partial
            // within one.
            let mut flushed = 0;
            for id in registry.tenant_ids() {
                if let Ok((steps, _version)) = registry.drain_tenant(id) {
                    flushed += steps;
                }
            }
            (
                flushed,
                registry.version(default_tenant.clone()).unwrap_or(0),
            )
        }
    };
    let hook = lock_recovering(&shared.drain_hook).take();
    let checkpoint_written = hook.map(|hook| hook()).unwrap_or(false);
    let summary = DrainSummary {
        requests_flushed,
        checkpoint_written,
        final_version,
    };
    *lock_recovering(&shared.drain_done) = Some(summary.clone());
    shared.drain_cv.notify_all();
    summary
}

/// Maps an engine failure to its wire response: tenant addressing mistakes
/// are the client's fault ([`ErrorCode::Malformed`]), an over-full engine
/// queue is an overload shed, everything else is internal.
fn engine_error_response(error: EngineError) -> WireMessage {
    match error {
        EngineError::Overloaded {
            queue_depth,
            queue_capacity,
        } => WireMessage::OverloadedResponse {
            queue_depth: queue_depth as u64,
            queue_capacity: queue_capacity as u64,
        },
        EngineError::UnknownTenant { .. } | EngineError::DuplicateTenant { .. } => {
            WireMessage::ErrorResponse {
                code: ErrorCode::Malformed,
                message: error.to_string(),
            }
        }
        other => WireMessage::ErrorResponse {
            code: ErrorCode::Internal,
            message: other.to_string(),
        },
    }
}

/// Resolves a frame's optional tenant id against the registry's default.
fn resolve_tenant(tenant: Option<String>, default_tenant: &TenantId) -> TenantId {
    tenant
        .map(TenantId::from)
        .unwrap_or_else(|| default_tenant.clone())
}

fn read_loop(stream: TcpStream, shared: Arc<ServerShared>, out: SyncSender<Pending>) {
    let mut reader = BufReader::new(stream);
    loop {
        match wire::read_message(&mut reader) {
            Ok(None) => return, // clean EOF
            Ok(Some(WireMessage::ClassifyRequest { tenant, signatures })) => {
                if shared.draining.load(Ordering::SeqCst) {
                    let rejected = Pending::Ready(WireMessage::ErrorResponse {
                        code: ErrorCode::Draining,
                        message: "server is draining; no new classify requests".to_string(),
                    });
                    if out.send(rejected).is_err() {
                        return;
                    }
                    continue;
                }
                let pending = match &shared.backend {
                    Backend::Single { batcher, .. } => {
                        if tenant.is_some() {
                            Pending::Ready(WireMessage::ErrorResponse {
                                code: ErrorCode::Malformed,
                                message: "this server fronts a single map; tenant \
                                          addressing needs a registry server"
                                    .to_string(),
                            })
                        } else {
                            let (reply_tx, reply_rx) = mpsc::channel();
                            let job = ClassifyJob {
                                signatures,
                                reply: reply_tx,
                            };
                            match batcher.submit(job) {
                                Ok(()) => Pending::Wait(reply_rx),
                                Err(_job) => {
                                    // Admission control: the scheduler's
                                    // bounded queue is full. Same typed
                                    // response the engine queue produces.
                                    let scheduler = batcher.snapshot();
                                    Pending::Ready(WireMessage::OverloadedResponse {
                                        queue_depth: scheduler.pending as u64,
                                        queue_capacity: scheduler.queue_capacity as u64,
                                    })
                                }
                            }
                        }
                    }
                    Backend::Registry {
                        registry,
                        default_tenant,
                    } => {
                        let id = resolve_tenant(tenant, default_tenant);
                        Pending::Ready(match registry.classify(id, signatures) {
                            Ok(predictions) => WireMessage::ClassifyResponse { predictions },
                            Err(error) => engine_error_response(error),
                        })
                    }
                };
                if out.send(pending).is_err() {
                    return;
                }
            }
            Ok(Some(WireMessage::TrainRequest { tenant, examples })) => {
                if shared.draining.load(Ordering::SeqCst) {
                    let rejected = Pending::Ready(WireMessage::ErrorResponse {
                        code: ErrorCode::Draining,
                        message: "server is draining; no new train requests".to_string(),
                    });
                    if out.send(rejected).is_err() {
                        return;
                    }
                    continue;
                }
                let response = match &shared.backend {
                    Backend::Single { .. } => WireMessage::ErrorResponse {
                        code: ErrorCode::Malformed,
                        message: "this server fronts a single map; training over the \
                                  wire needs a registry server"
                            .to_string(),
                    },
                    Backend::Registry {
                        registry,
                        default_tenant,
                    } => {
                        let id = resolve_tenant(tenant, default_tenant);
                        let mut accepted = 0u64;
                        let mut failure = None;
                        for (signature, label) in &examples {
                            let label = ObjectLabel::new(*label as usize);
                            match registry.feed(id.clone(), signature, label) {
                                Ok(()) => accepted += 1,
                                Err(error) => {
                                    failure = Some(error);
                                    break;
                                }
                            }
                        }
                        match failure {
                            None => WireMessage::TrainResponse { accepted },
                            Some(error) => engine_error_response(error),
                        }
                    }
                };
                if out.send(Pending::Ready(response)).is_err() {
                    return;
                }
            }
            Ok(Some(WireMessage::HealthRequest)) => {
                let health =
                    Pending::Ready(WireMessage::HealthResponse(Box::new(build_health(&shared))));
                if out.send(health).is_err() {
                    return;
                }
            }
            Ok(Some(WireMessage::DrainRequest { tenant })) => {
                let response = match (&shared.backend, tenant) {
                    (Backend::Single { .. }, Some(_)) => WireMessage::ErrorResponse {
                        code: ErrorCode::Malformed,
                        message: "this server fronts a single map; tenant drains need \
                                  a registry server"
                            .to_string(),
                    },
                    (
                        Backend::Registry {
                            registry,
                            default_tenant: _,
                        },
                        Some(tenant),
                    ) => {
                        // A tenant drain flushes just that tenant's pending
                        // queue — the server keeps running.
                        match registry.drain_tenant(tenant) {
                            Ok((steps_flushed, final_version)) => {
                                WireMessage::DrainResponse(DrainSummary {
                                    requests_flushed: steps_flushed,
                                    checkpoint_written: false,
                                    final_version,
                                })
                            }
                            Err(error) => engine_error_response(error),
                        }
                    }
                    // Blocks until the flush + hook finish; the response is
                    // queued *behind* this connection's earlier classify
                    // responses, so the requester sees its own verdicts
                    // first.
                    (_, None) => WireMessage::DrainResponse(begin_drain(&shared)),
                };
                if out.send(Pending::Ready(response)).is_err() {
                    return;
                }
            }
            Ok(Some(_)) => {
                // A response kind from a client is a protocol violation.
                let _ = out.send(Pending::Ready(WireMessage::ErrorResponse {
                    code: ErrorCode::Malformed,
                    message: "clients must send request frames".to_string(),
                }));
                return;
            }
            Err(error) => {
                // Typed rejection, then hang up: after a framing error the
                // stream position is unreliable.
                let _ = out.send(Pending::Ready(WireMessage::ErrorResponse {
                    code: ErrorCode::Malformed,
                    message: error.to_string(),
                }));
                return;
            }
        }
    }
}

fn reply_to_message(reply: Result<BatchReply, mpsc::RecvError>) -> WireMessage {
    match reply {
        Ok(BatchReply::Predictions(predictions)) => WireMessage::ClassifyResponse { predictions },
        Ok(BatchReply::Overloaded {
            queue_depth,
            queue_capacity,
        }) => WireMessage::OverloadedResponse {
            queue_depth,
            queue_capacity,
        },
        Ok(BatchReply::Failed(message)) => WireMessage::ErrorResponse {
            code: ErrorCode::Internal,
            message,
        },
        Err(_) => WireMessage::ErrorResponse {
            code: ErrorCode::Internal,
            message: "the scheduler dropped the reply".to_string(),
        },
    }
}

/// Flushes are coalesced: the writer only flushes when it is about to
/// block (on the pending queue or on an unresolved batch reply), so the
/// responses of one coalesced batch — which all resolve at the same
/// instant — go out in a single syscall instead of one per response.
fn write_loop(stream: TcpStream, queue: Receiver<Pending>) {
    let mut writer = BufWriter::new(stream);
    let mut carried: Option<Pending> = None;
    loop {
        let pending = match carried.take() {
            Some(pending) => pending,
            None => {
                if writer.flush().is_err() {
                    return;
                }
                match queue.recv() {
                    Ok(pending) => pending,
                    Err(_) => break,
                }
            }
        };
        let message = match pending {
            Pending::Ready(message) => message,
            Pending::Wait(reply) => match reply.try_recv() {
                Ok(resolved) => reply_to_message(Ok(resolved)),
                Err(mpsc::TryRecvError::Empty) => {
                    // The batch is still collecting: get everything written
                    // so far onto the wire before waiting on it.
                    if writer.flush().is_err() {
                        return;
                    }
                    reply_to_message(reply.recv())
                }
                Err(mpsc::TryRecvError::Disconnected) => reply_to_message(Err(mpsc::RecvError)),
            },
        };
        if wire::write_message(&mut writer, &message).is_err() {
            return;
        }
        match queue.try_recv() {
            Ok(pending) => carried = Some(pending),
            Err(mpsc::TryRecvError::Empty) => {}
            Err(mpsc::TryRecvError::Disconnected) => break,
        }
    }
    // Queue closed: the reader is done and everything queued was written.
    let _ = writer.flush();
    if let Ok(stream) = writer.into_inner() {
        let _ = stream.shutdown(Shutdown::Write);
    }
}
