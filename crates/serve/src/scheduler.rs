//! The adaptive micro-batching scheduler.
//!
//! Small classify requests are cheap to compute and expensive to dispatch:
//! every batch pays one worker-pool round trip regardless of size. The
//! scheduler amortizes that fixed cost the way the paper's FPGA comparator
//! pipeline amortizes per-frame overheads — requests arriving close together
//! coalesce into **one** `classify_batch` call.
//!
//! The state machine (documented in DESIGN.md §"The serving front-end"):
//!
//! 1. **Idle** — block on the pending queue. The first request opens a batch
//!    and starts a deadline `now + delay`.
//! 2. **Collecting** — greedily drain the queue into the batch; once the
//!    queue is momentarily empty, sleep until the next arrival or the
//!    deadline, whichever is first.
//! 3. **Dispatch** — triggered by *size* (the batch reached
//!    [`SchedulerConfig::max_batch_signatures`]), by *deadline*, or by a
//!    *drain* sentinel. The whole batch goes through one
//!    [`Recognizer::try_classify_batch`]; per-request spans of the result
//!    vector are sent back in request order, bit-identical to what each
//!    request would have received alone (the winner search is
//!    deterministic and the whole batch sees one snapshot).
//!
//! After every dispatch the coalescing `delay` **adapts to observed queue
//! depth**: a backlog at or above [`SchedulerConfig::high_watermark`] means
//! the queue itself provides coalescing and waiting only adds latency, so
//! the delay halves (down to zero — pure greedy batching). An empty queue
//! after a deadline flush of an undersized batch means arrivals are sparse,
//! so the delay doubles (up to [`SchedulerConfig::max_delay`]) to coalesce
//! more of them.
//!
//! Admission control is two-staged, and both stages surface as a typed
//! `Overloaded` wire response: the scheduler's own bounded pending queue
//! sheds at [`MicroBatcher::submit`], and the engine's bounded job queue
//! sheds whole batches through [`EngineError::Overloaded`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::{Builder, JoinHandle};
use std::time::{Duration, Instant};

use bsom_engine::{EngineError, Recognizer};
use bsom_signature::BinaryVector;
use bsom_som::Prediction;

/// Tuning knobs of the micro-batching scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Dispatch as soon as a batch holds this many signatures.
    pub max_batch_signatures: usize,
    /// Upper bound of the adaptive coalescing delay.
    pub max_delay: Duration,
    /// Starting value of the adaptive delay.
    pub initial_delay: Duration,
    /// Bounded pending-queue capacity (in requests); submits beyond it shed.
    pub queue_capacity: usize,
    /// Queue depth at or above which the delay halves after a dispatch.
    pub high_watermark: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch_signatures: 256,
            max_delay: Duration::from_millis(1),
            initial_delay: Duration::from_micros(200),
            queue_capacity: 1024,
            high_watermark: 4,
        }
    }
}

impl SchedulerConfig {
    /// A scheduler that never coalesces: every request dispatches alone,
    /// immediately. The control leg the `BENCH_serve.json` micro-batching
    /// speedup is measured against.
    pub fn batch_of_one() -> Self {
        SchedulerConfig {
            max_batch_signatures: 1,
            max_delay: Duration::ZERO,
            initial_delay: Duration::ZERO,
            ..SchedulerConfig::default()
        }
    }
}

/// What a classify request gets back from the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchReply {
    /// One prediction per submitted signature, in order.
    Predictions(Vec<Prediction>),
    /// The engine's job queue shed the coalesced batch this request rode in.
    Overloaded {
        /// Queue depth when the batch was shed.
        queue_depth: u64,
        /// Queue capacity of the shedding stage.
        queue_capacity: u64,
    },
    /// The dispatch failed outright (e.g. the worker pool shut down).
    Failed(String),
}

/// One queued classify request.
#[derive(Debug)]
pub struct ClassifyJob {
    /// The signatures to classify.
    pub signatures: Vec<BinaryVector>,
    /// Where the reply goes. Send failures are ignored: a caller that hung
    /// up just stops caring about its verdicts.
    pub reply: mpsc::Sender<BatchReply>,
}

/// The classify sink a scheduler dispatches into. `Recognizer` is the
/// production implementation; tests substitute deterministic mocks.
pub trait BatchClassify: Send + 'static {
    /// Classifies one coalesced batch, shedding with
    /// [`EngineError::Overloaded`] when saturated.
    fn try_classify(
        &mut self,
        signatures: Vec<BinaryVector>,
    ) -> Result<Vec<Prediction>, EngineError>;
}

impl BatchClassify for Recognizer {
    fn try_classify(
        &mut self,
        signatures: Vec<BinaryVector>,
    ) -> Result<Vec<Prediction>, EngineError> {
        self.try_classify_batch(signatures)
    }
}

/// Monotonic counters and gauges of one scheduler, all lock-free.
#[derive(Debug, Default)]
struct StatsInner {
    pending: AtomicUsize,
    submitted: AtomicU64,
    requests_dispatched: AtomicU64,
    batches_dispatched: AtomicU64,
    requests_coalesced: AtomicU64,
    signatures_dispatched: AtomicU64,
    requests_shed: AtomicU64,
    delay_micros: AtomicU64,
}

/// A point-in-time copy of the scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerSnapshot {
    /// Requests waiting in the pending queue right now.
    pub pending: usize,
    /// Capacity of the pending queue.
    pub queue_capacity: usize,
    /// Requests ever accepted by [`MicroBatcher::submit`].
    pub submitted: u64,
    /// Requests dispatched (replied to) so far.
    pub requests_dispatched: u64,
    /// Coalesced batches dispatched so far.
    pub batches_dispatched: u64,
    /// Requests that shared their batch with at least one other request.
    pub requests_coalesced: u64,
    /// Signatures that went through a successful dispatch.
    pub signatures_dispatched: u64,
    /// Requests shed — at admission or by the engine queue.
    pub requests_shed: u64,
    /// The adaptive coalescing delay right now, in microseconds.
    pub delay_micros: u64,
}

enum Control {
    Job(ClassifyJob),
    Drain(mpsc::Sender<()>),
}

/// Why a batch left the collecting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    Size,
    Deadline,
    Drain,
}

/// Handle to a running micro-batching scheduler thread.
///
/// Dropping the handle shuts the scheduler down after it flushes whatever is
/// already queued.
#[derive(Debug)]
pub struct MicroBatcher {
    tx: SyncSender<Control>,
    stats: Arc<StatsInner>,
    queue_capacity: usize,
    thread: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Spawns the scheduler thread around `classifier`.
    pub fn new<C: BatchClassify>(classifier: C, config: SchedulerConfig) -> Self {
        let config = SchedulerConfig {
            max_batch_signatures: config.max_batch_signatures.max(1),
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity);
        let stats = Arc::new(StatsInner::default());
        stats
            .delay_micros
            .store(config.initial_delay.as_micros() as u64, Ordering::Relaxed);
        let queue_capacity = config.queue_capacity;
        let loop_stats = Arc::clone(&stats);
        let thread = Builder::new()
            .name("bsom-serve-scheduler".to_string())
            .spawn(move || run_scheduler(classifier, rx, loop_stats, config))
            .expect("spawning the scheduler thread");
        MicroBatcher {
            tx,
            stats,
            queue_capacity,
            thread: Some(thread),
        }
    }

    /// Submits a request for batching. `Err` hands the job back when the
    /// bounded pending queue is full — the admission-control shed the caller
    /// turns into a typed `Overloaded` wire response.
    pub fn submit(&self, job: ClassifyJob) -> Result<(), ClassifyJob> {
        match self.tx.try_send(Control::Job(job)) {
            Ok(()) => {
                self.stats.pending.fetch_add(1, Ordering::SeqCst);
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(Control::Job(job)))
            | Err(TrySendError::Disconnected(Control::Job(job))) => {
                self.stats.requests_shed.fetch_add(1, Ordering::Relaxed);
                Err(job)
            }
            // Only `Control::Job` values are ever handed to this method.
            Err(_) => unreachable!("submit only sends jobs"),
        }
    }

    /// Flushes every request accepted before this call and returns how many
    /// were dispatched by the flush. Blocks until the scheduler has replied
    /// to all of them.
    pub fn drain(&self) -> u64 {
        let before = self.stats.requests_dispatched.load(Ordering::SeqCst);
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(Control::Drain(ack_tx)).is_err() {
            return 0;
        }
        // A lost ack means the scheduler exited mid-drain; the counter diff
        // still reports what was flushed.
        let _ = ack_rx.recv();
        self.stats
            .requests_dispatched
            .load(Ordering::SeqCst)
            .saturating_sub(before)
    }

    /// The current counters.
    pub fn snapshot(&self) -> SchedulerSnapshot {
        SchedulerSnapshot {
            pending: self.stats.pending.load(Ordering::SeqCst),
            queue_capacity: self.queue_capacity,
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            requests_dispatched: self.stats.requests_dispatched.load(Ordering::SeqCst),
            batches_dispatched: self.stats.batches_dispatched.load(Ordering::Relaxed),
            requests_coalesced: self.stats.requests_coalesced.load(Ordering::Relaxed),
            signatures_dispatched: self.stats.signatures_dispatched.load(Ordering::Relaxed),
            requests_shed: self.stats.requests_shed.load(Ordering::Relaxed),
            delay_micros: self.stats.delay_micros.load(Ordering::Relaxed),
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        // Close the queue; the scheduler flushes what it already holds and
        // exits.
        let (closed_tx, _) = mpsc::sync_channel(1);
        let _ = std::mem::replace(&mut self.tx, closed_tx);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The delay adaptation rule, pure so the unit suite can pin its behavior.
fn adapt_delay(
    delay: Duration,
    reason: FlushReason,
    pending_after: usize,
    batch_signatures: usize,
    config: &SchedulerConfig,
) -> Duration {
    let step = (config.max_delay / 32).max(Duration::from_micros(25));
    match reason {
        // A drain is not a traffic signal.
        FlushReason::Drain => delay,
        // Backlogged: the queue coalesces by itself; waiting only adds
        // latency. Halve toward pure greedy batching.
        _ if pending_after >= config.high_watermark => {
            if delay <= Duration::from_micros(2) {
                Duration::ZERO
            } else {
                delay / 2
            }
        }
        // Sparse: the deadline expired on an undersized batch and nothing
        // is waiting. Lengthen to coalesce more arrivals.
        FlushReason::Deadline
            if pending_after == 0 && batch_signatures * 2 < config.max_batch_signatures =>
        {
            (delay * 2).max(step).min(config.max_delay)
        }
        _ => delay,
    }
}

fn dispatch<C: BatchClassify>(classifier: &mut C, jobs: Vec<ClassifyJob>, stats: &StatsInner) {
    let total: usize = jobs.iter().map(|j| j.signatures.len()).sum();
    let mut combined = Vec::with_capacity(total);
    let mut spans = Vec::with_capacity(jobs.len());
    for job in &jobs {
        spans.push((combined.len(), job.signatures.len()));
        combined.extend_from_slice(&job.signatures);
    }
    let outcome = classifier.try_classify(combined);
    stats.batches_dispatched.fetch_add(1, Ordering::Relaxed);
    if jobs.len() > 1 {
        stats
            .requests_coalesced
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    }
    match outcome {
        Ok(predictions) => {
            stats
                .signatures_dispatched
                .fetch_add(total as u64, Ordering::Relaxed);
            for (job, (start, len)) in jobs.iter().zip(&spans) {
                let slice = predictions[*start..*start + *len].to_vec();
                let _ = job.reply.send(BatchReply::Predictions(slice));
            }
        }
        Err(EngineError::Overloaded {
            queue_capacity,
            queue_depth,
        }) => {
            // The whole coalesced batch is shed: partial admission would
            // reorder requests relative to their wire responses.
            stats
                .requests_shed
                .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            for job in &jobs {
                let _ = job.reply.send(BatchReply::Overloaded {
                    queue_depth: queue_depth as u64,
                    queue_capacity: queue_capacity as u64,
                });
            }
        }
        Err(error) => {
            let message = error.to_string();
            for job in &jobs {
                let _ = job.reply.send(BatchReply::Failed(message.clone()));
            }
        }
    }
    stats
        .requests_dispatched
        .fetch_add(jobs.len() as u64, Ordering::SeqCst);
}

fn run_scheduler<C: BatchClassify>(
    mut classifier: C,
    rx: Receiver<Control>,
    stats: Arc<StatsInner>,
    config: SchedulerConfig,
) {
    let mut delay = config.initial_delay.min(config.max_delay);
    loop {
        let first = match rx.recv() {
            Ok(Control::Drain(ack)) => {
                // Nothing pending ahead of the sentinel: ack and idle on.
                let _ = ack.send(());
                continue;
            }
            Ok(Control::Job(job)) => job,
            Err(_) => return,
        };
        stats.pending.fetch_sub(1, Ordering::SeqCst);
        let mut jobs = vec![first];
        let mut total = jobs[0].signatures.len();
        let deadline = Instant::now() + delay;
        let mut drain_acks: Vec<mpsc::Sender<()>> = Vec::new();
        let mut disconnected = false;
        let mut reason = FlushReason::Size;
        'collect: while total < config.max_batch_signatures {
            // Greedy sweep: take whatever is already queued.
            loop {
                match rx.try_recv() {
                    Ok(Control::Job(job)) => {
                        stats.pending.fetch_sub(1, Ordering::SeqCst);
                        total += job.signatures.len();
                        jobs.push(job);
                        if total >= config.max_batch_signatures {
                            break 'collect;
                        }
                    }
                    Ok(Control::Drain(ack)) => {
                        drain_acks.push(ack);
                        reason = FlushReason::Drain;
                        break 'collect;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break 'collect;
                    }
                }
            }
            // Queue momentarily empty: wait for the next arrival or the
            // deadline.
            let now = Instant::now();
            if now >= deadline {
                reason = FlushReason::Deadline;
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(Control::Job(job)) => {
                    stats.pending.fetch_sub(1, Ordering::SeqCst);
                    total += job.signatures.len();
                    jobs.push(job);
                }
                Ok(Control::Drain(ack)) => {
                    drain_acks.push(ack);
                    reason = FlushReason::Drain;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {
                    reason = FlushReason::Deadline;
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        dispatch(&mut classifier, jobs, &stats);
        for ack in drain_acks {
            let _ = ack.send(());
        }
        delay = adapt_delay(
            delay,
            reason,
            stats.pending.load(Ordering::SeqCst),
            total,
            &config,
        );
        stats
            .delay_micros
            .store(delay.as_micros() as u64, Ordering::Relaxed);
        if disconnected {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SchedulerConfig {
        SchedulerConfig {
            max_batch_signatures: 64,
            max_delay: Duration::from_millis(1),
            initial_delay: Duration::from_micros(200),
            queue_capacity: 8,
            high_watermark: 4,
        }
    }

    #[test]
    fn backlog_halves_the_delay_down_to_zero() {
        let cfg = config();
        let mut delay = Duration::from_micros(200);
        for _ in 0..16 {
            delay = adapt_delay(delay, FlushReason::Size, 8, 64, &cfg);
        }
        assert_eq!(
            delay,
            Duration::ZERO,
            "a sustained backlog must reach greedy batching"
        );
    }

    #[test]
    fn sparse_deadline_flushes_double_the_delay_up_to_the_cap() {
        let cfg = config();
        let mut delay = Duration::ZERO;
        for _ in 0..16 {
            delay = adapt_delay(delay, FlushReason::Deadline, 0, 1, &cfg);
        }
        assert_eq!(
            delay, cfg.max_delay,
            "sparse traffic must grow the delay to the cap"
        );
    }

    #[test]
    fn full_or_busy_flushes_leave_the_delay_alone() {
        let cfg = config();
        let delay = Duration::from_micros(100);
        // Size flush with a quiet queue: the batch filled naturally.
        assert_eq!(adapt_delay(delay, FlushReason::Size, 0, 64, &cfg), delay);
        // Deadline flush of a nearly-full batch: not sparse.
        assert_eq!(
            adapt_delay(delay, FlushReason::Deadline, 0, 63, &cfg),
            delay
        );
        // Drain is not a traffic signal.
        assert_eq!(adapt_delay(delay, FlushReason::Drain, 0, 1, &cfg), delay);
    }
}
