//! A blocking client for the `bsom-serve` wire protocol.
//!
//! [`ServeClient`] is the simple request/response handle; splitting it with
//! [`ServeClient::split`] gives independently owned send/receive halves so a
//! load generator can pipeline — many requests in flight on one connection,
//! which is exactly the traffic shape the server's micro-batching scheduler
//! coalesces.

use std::error::Error;
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use bsom_signature::BinaryVector;
use bsom_som::Prediction;

use crate::wire::{self, DrainSummary, ErrorCode, WireError, WireHealth, WireMessage};

/// What a request against a serve endpoint can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The wire layer failed (I/O or framing).
    Wire(WireError),
    /// The server shed the request under load — retry after backoff.
    Overloaded {
        /// Queue depth the server reported.
        queue_depth: u64,
        /// Capacity of the queue that shed the request.
        queue_capacity: u64,
    },
    /// The server rejected the request with a typed error response.
    Rejected {
        /// The machine-readable code.
        code: ErrorCode,
        /// The server's detail message.
        message: String,
    },
    /// The server answered with a message kind that does not match the
    /// request.
    UnexpectedResponse {
        /// A description of what arrived.
        what: String,
    },
    /// The server closed the connection before answering.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
            ClientError::Overloaded {
                queue_depth,
                queue_capacity,
            } => write!(f, "request shed: queue at {queue_depth}/{queue_capacity}"),
            ClientError::Rejected { code, message } => {
                write!(f, "request rejected ({code}): {message}")
            }
            ClientError::UnexpectedResponse { what } => {
                write!(f, "unexpected response: {what}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

fn unexpected(message: WireMessage) -> ClientError {
    ClientError::UnexpectedResponse {
        what: format!("{message:?}"),
    }
}

/// The sending half of a split connection.
#[derive(Debug)]
pub struct SendHalf {
    writer: BufWriter<TcpStream>,
}

impl SendHalf {
    /// Sends one classify request against the default tenant.
    pub fn send_classify(&mut self, signatures: &[BinaryVector]) -> Result<(), WireError> {
        self.send_frame(&wire::encode_classify_request(signatures))
    }

    /// Sends one classify request against `tenant` (`None` = default
    /// tenant, byte-identical to [`send_classify`](Self::send_classify)).
    pub fn send_classify_tenant(
        &mut self,
        tenant: Option<&str>,
        signatures: &[BinaryVector],
    ) -> Result<(), WireError> {
        self.send_frame(&wire::encode_classify_request_for(tenant, signatures))
    }

    /// Sends one pre-encoded frame — load generators encode once and replay.
    pub fn send_frame(&mut self, frame: &[u8]) -> Result<(), WireError> {
        self.writer.write_all(frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends an arbitrary message.
    pub fn send(&mut self, message: &WireMessage) -> Result<(), WireError> {
        wire::write_message(&mut self.writer, message)?;
        self.writer.flush()?;
        Ok(())
    }
}

/// The receiving half of a split connection.
#[derive(Debug)]
pub struct RecvHalf {
    reader: BufReader<TcpStream>,
}

impl RecvHalf {
    /// Reads the next response; `Ok(None)` means the server closed cleanly.
    pub fn recv(&mut self) -> Result<Option<WireMessage>, WireError> {
        wire::read_message(&mut self.reader)
    }
}

/// A blocking connection to a `bsom-serve` endpoint.
#[derive(Debug)]
pub struct ServeClient {
    send: SendHalf,
    recv: RecvHalf,
}

impl ServeClient {
    /// Connects to `addr` with `TCP_NODELAY` set.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        stream.set_nodelay(true).map_err(WireError::Io)?;
        let read = stream.try_clone().map_err(WireError::Io)?;
        Ok(ServeClient {
            send: SendHalf {
                writer: BufWriter::new(stream),
            },
            recv: RecvHalf {
                reader: BufReader::new(read),
            },
        })
    }

    /// Splits into independently owned halves for pipelining.
    pub fn split(self) -> (SendHalf, RecvHalf) {
        (self.send, self.recv)
    }

    fn request(&mut self, message: &WireMessage) -> Result<WireMessage, ClientError> {
        self.send.send(message)?;
        self.recv.recv()?.ok_or(ClientError::Disconnected)
    }

    /// Classifies `signatures` over the wire; predictions come back in
    /// request order, bit-identical to an in-process
    /// `Recognizer::classify_batch` against the same snapshot.
    pub fn classify(
        &mut self,
        signatures: &[BinaryVector],
    ) -> Result<Vec<Prediction>, ClientError> {
        self.classify_tenant(None, signatures)
    }

    /// [`classify`](Self::classify) against a named tenant of a registry
    /// server. `None` is the default tenant and emits a format-1 frame, so
    /// this method also works against pre-tenant servers.
    pub fn classify_tenant(
        &mut self,
        tenant: Option<&str>,
        signatures: &[BinaryVector],
    ) -> Result<Vec<Prediction>, ClientError> {
        self.send.send_classify_tenant(tenant, signatures)?;
        match self.recv.recv()?.ok_or(ClientError::Disconnected)? {
            WireMessage::ClassifyResponse { predictions } => Ok(predictions),
            WireMessage::OverloadedResponse {
                queue_depth,
                queue_capacity,
            } => Err(ClientError::Overloaded {
                queue_depth,
                queue_capacity,
            }),
            WireMessage::ErrorResponse { code, message } => {
                Err(ClientError::Rejected { code, message })
            }
            other => Err(unexpected(other)),
        }
    }

    /// Feeds labelled training examples to a tenant of a registry server
    /// (`None` = default tenant); returns how many the server queued.
    pub fn train(
        &mut self,
        tenant: Option<&str>,
        examples: &[(BinaryVector, u64)],
    ) -> Result<u64, ClientError> {
        let message = WireMessage::TrainRequest {
            tenant: tenant.map(str::to_string),
            examples: examples.to_vec(),
        };
        match self.request(&message)? {
            WireMessage::TrainResponse { accepted } => Ok(accepted),
            WireMessage::OverloadedResponse {
                queue_depth,
                queue_capacity,
            } => Err(ClientError::Overloaded {
                queue_depth,
                queue_capacity,
            }),
            WireMessage::ErrorResponse { code, message } => {
                Err(ClientError::Rejected { code, message })
            }
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's health report.
    pub fn health(&mut self) -> Result<WireHealth, ClientError> {
        match self.request(&WireMessage::HealthRequest)? {
            WireMessage::HealthResponse(health) => Ok(*health),
            WireMessage::ErrorResponse { code, message } => {
                Err(ClientError::Rejected { code, message })
            }
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to drain gracefully; returns what the drain did.
    pub fn drain(&mut self) -> Result<DrainSummary, ClientError> {
        self.drain_request(None)
    }

    /// Asks a registry server to flush one tenant's queued training work;
    /// the server keeps running. [`DrainSummary::requests_flushed`] counts
    /// the training steps flushed.
    pub fn drain_tenant(&mut self, tenant: &str) -> Result<DrainSummary, ClientError> {
        self.drain_request(Some(tenant.to_string()))
    }

    fn drain_request(&mut self, tenant: Option<String>) -> Result<DrainSummary, ClientError> {
        match self.request(&WireMessage::DrainRequest { tenant })? {
            WireMessage::DrainResponse(summary) => Ok(summary),
            WireMessage::ErrorResponse { code, message } => {
                Err(ClientError::Rejected { code, message })
            }
            other => Err(unexpected(other)),
        }
    }
}
