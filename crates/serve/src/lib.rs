//! # bsom-serve
//!
//! The TCP serving front-end of the bSOM reproduction: the layer that turns
//! the in-process train-while-serve [`SomService`](bsom_engine::SomService)
//! into a network service (ROADMAP north star: serving this workload at
//! fleet scale).
//!
//! * [`wire`] — the hand-rolled, length-prefixed, FNV-1a-64-checksummed
//!   frame format (the checkpoint frames' sibling). Malformed input is
//!   rejected as a typed [`WireError`], never a panic —
//!   proptested by `tests/wire_corruption.rs`.
//! * [`scheduler`] — the adaptive micro-batching scheduler: pipelined small
//!   requests coalesce into one `classify_batch` up to a latency deadline
//!   that adapts to observed queue depth, with two-stage admission control
//!   surfacing as typed `Overloaded` responses.
//! * [`server`] — the `std::net` listener, per-connection reader/writer
//!   threads (responses strictly in request order, so clients may
//!   pipeline), the wire health endpoint, and graceful drain with an
//!   optional checkpoint hook. [`Server::bind_registry`] fronts a whole
//!   [`MapRegistry`](bsom_engine::MapRegistry) — format-2 frames address
//!   tenants by id, format-1 frames keep working against the default
//!   tenant.
//! * [`client`] — a blocking client, splittable for pipelining.
//! * [`loadgen`] — the open-loop (coordinated-omission-free) and
//!   closed-loop load harness behind the `loadgen` binary.
//! * [`mod@bench`] — the measured figures tracked in `BENCH_serve.json`.
//!
//! Both binaries (`bsom-serve`, `loadgen`) call
//! [`bsom_signature::validate_env_dispatch`] before doing anything else, so
//! a bad `BSOM_DISPATCH` fails fast at startup instead of deep in a worker.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bench;
pub mod client;
pub mod loadgen;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use client::{ClientError, ServeClient};
pub use scheduler::{
    BatchClassify, BatchReply, ClassifyJob, MicroBatcher, SchedulerConfig, SchedulerSnapshot,
};
pub use server::{DrainHook, ServeConfig, Server};
pub use wire::{DrainSummary, ErrorCode, WireError, WireHealth, WireMessage};
