//! The length-prefixed wire format of the serving front-end.
//!
//! Every message on a `bsom-serve` connection is one *frame*, laid out like
//! the engine's checkpoint frames (`bsom_engine::checkpoint`) so the two
//! formats share a fault model — see DESIGN.md §"The serving front-end" for
//! the worked example:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"BSOMWIRE"
//! 8       4     format version, u32 LE (1 or 2)
//! 12      1     message kind (see below)
//! 13      8     payload length L, u64 LE
//! 21      L     payload (kind-specific, fixed-width LE fields)
//! 21+L    8     FNV-1a-64 checksum of bytes [0, 21+L), u64 LE
//! ```
//!
//! Decoding never trusts the length prefix before bounding it
//! ([`MAX_WIRE_PAYLOAD`]) and never panics on malformed input: every failure
//! is a typed [`WireError`]. Signature payloads carry the packed 64-bit
//! words of [`BinaryVector`] verbatim, so decoding adopts the words through
//! [`BinaryVector::from_words`] without per-bit repacking — the zero-copy
//! path into a `SignatureBatch` — and rejects any frame whose tail bits
//! violate the packing invariant.
//!
//! # Format 2: tenant addressing
//!
//! Format 2 frames front the multi-tenant
//! [`MapRegistry`](bsom_engine::registry::MapRegistry): every *request*
//! payload that routes to a tenant (classify, train, drain) opens with a
//! tenant-id prefix — a `u32` length followed by that many UTF-8 bytes
//! (≤ [`MAX_TENANT_ID_BYTES`]), where length 0 means the server's default
//! tenant. Response payloads are unchanged (the connection knows which
//! request a response answers). Format 2 also adds the train request /
//! response kinds, which do not exist in format 1.
//!
//! Compatibility is strictly one-way and proven by `tests/wire_corruption.rs`:
//!
//! * The encoder emits format 1 whenever the message is expressible in it
//!   (no tenant, no train kind), byte-identical to the format-1 encoder, so
//!   old servers keep working with new default-tenant clients.
//! * This decoder accepts both formats; a format-1 frame simply has no
//!   tenant field and routes to the default tenant.
//! * An old (format-1-only) decoder rejects every format-2 frame with a
//!   typed [`WireError::UnsupportedFormat`] before reading any payload —
//!   emulated by [`decode_message_with_max_format`].

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use bsom_signature::BinaryVector;
use bsom_som::{ObjectLabel, Prediction};
use serde::{Deserialize, Serialize};

/// Magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 8] = *b"BSOMWIRE";

/// The baseline wire format version: no tenant addressing.
pub const WIRE_FORMAT: u32 = 1;

/// The tenant-addressed wire format version (see the [module docs](self)
/// §"Format 2"). The encoder uses it only for messages format 1 cannot
/// express; the decoder accepts both.
pub const WIRE_FORMAT_TENANT: u32 = 2;

/// Longest tenant id (in UTF-8 bytes) a format-2 frame may carry.
pub const MAX_TENANT_ID_BYTES: usize = 128;

/// Most labelled examples one train request may carry.
pub const MAX_TRAIN_EXAMPLES: u32 = 4096;

/// Fixed frame header length: magic (8) + format (4) + kind (1) + payload
/// length (8).
pub const WIRE_HEADER_LEN: usize = 21;

/// Trailing checksum length.
pub const WIRE_CHECKSUM_LEN: usize = 8;

/// Hard upper bound on a frame's declared payload length. A length prefix
/// above this is rejected *before* any allocation, so a corrupted or hostile
/// prefix cannot drive an out-of-memory.
pub const MAX_WIRE_PAYLOAD: u64 = 16 * 1024 * 1024;

/// Most signatures one classify request may carry.
pub const MAX_REQUEST_SIGNATURES: u32 = 4096;

/// Longest signature (in bits) a classify request may carry.
pub const MAX_VECTOR_BITS: u32 = 1 << 16;

/// FNV-1a-64 over `bytes` — the same checksum the checkpoint frames use
/// (offset basis `0xcbf2_9ce4_8422_2325`, prime `0x100_0000_01b3`), kept
/// `pub` so the worked example in DESIGN.md stays verifiable.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Message kinds (the `kind` header byte). Requests have the high bit
/// clear, responses have it set.
mod kind {
    pub const CLASSIFY_REQUEST: u8 = 0x01;
    pub const HEALTH_REQUEST: u8 = 0x02;
    pub const DRAIN_REQUEST: u8 = 0x03;
    /// Format 2 only: feed labelled examples to a tenant.
    pub const TRAIN_REQUEST: u8 = 0x04;
    pub const CLASSIFY_RESPONSE: u8 = 0x81;
    pub const HEALTH_RESPONSE: u8 = 0x82;
    pub const DRAIN_RESPONSE: u8 = 0x83;
    /// Format 2 only: acknowledgement of a train request.
    pub const TRAIN_RESPONSE: u8 = 0x84;
    pub const OVERLOADED_RESPONSE: u8 = 0x8E;
    pub const ERROR_RESPONSE: u8 = 0x8F;
}

/// Why a frame failed to decode. Every malformed input maps to exactly one
/// of these — the decoder never panics.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(io::Error),
    /// Fewer bytes than a frame header.
    TooShort {
        /// Bytes available.
        len: usize,
    },
    /// The first eight bytes are not [`WIRE_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 8],
    },
    /// The format version is outside the decoder's supported range
    /// ([`WIRE_FORMAT`]..=[`WIRE_FORMAT_TENANT`]).
    UnsupportedFormat {
        /// The version found.
        found: u32,
    },
    /// The kind byte names no known message.
    UnknownKind {
        /// The kind byte found.
        found: u8,
    },
    /// The length prefix exceeds [`MAX_WIRE_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The enforced maximum.
        max: u64,
    },
    /// The buffer ends before the declared payload + checksum.
    Truncated {
        /// Bytes the frame claims to need.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remain after a complete frame (exact-decode contexts only).
    TrailingBytes {
        /// Number of extra bytes.
        extra: usize,
    },
    /// The trailing checksum does not match the frame contents.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum computed over the frame.
        computed: u64,
    },
    /// The payload is structurally invalid for its kind.
    Malformed {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::TooShort { len } => {
                write!(
                    f,
                    "{len} bytes is shorter than a {WIRE_HEADER_LEN}-byte frame header"
                )
            }
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            WireError::UnsupportedFormat { found } => {
                write!(
                    f,
                    "unsupported wire format {found} (expected {WIRE_FORMAT}..={WIRE_FORMAT_TENANT})"
                )
            }
            WireError::UnknownKind { found } => write!(f, "unknown message kind {found:#04x}"),
            WireError::Oversized { declared, max } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds the {max}-byte cap"
                )
            }
            WireError::Truncated {
                declared,
                available,
            } => write!(
                f,
                "frame needs {declared} bytes but only {available} are available"
            ),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} bytes of trailing garbage after the frame")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WireError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Machine-readable code carried by an [`WireMessage::ErrorResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request frame decoded but was semantically unusable.
    Malformed,
    /// The server is draining and no longer accepts classify requests.
    Draining,
    /// An internal failure (e.g. the worker pool shut down mid-request).
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Draining => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, WireError> {
        match byte {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::Draining),
            3 => Ok(ErrorCode::Internal),
            other => Err(malformed(format!("unknown error code {other}"))),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Malformed => write!(f, "malformed"),
            ErrorCode::Draining => write!(f, "draining"),
            ErrorCode::Internal => write!(f, "internal"),
        }
    }
}

/// The health report served over the wire: the engine's `ServiceHealth`
/// counters plus the scheduler's own gauges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireHealth {
    /// Version of the snapshot currently served.
    pub snapshot_version: u64,
    /// Worker threads the engine was configured with.
    pub workers_configured: u64,
    /// Worker threads currently alive.
    pub workers_alive: u64,
    /// Engine job-queue depth at sampling time.
    pub engine_queue_depth: u64,
    /// Engine job-queue capacity.
    pub engine_queue_capacity: u64,
    /// Worker jobs that panicked since service construction.
    pub worker_panics: u64,
    /// Workers the supervisor respawned.
    pub worker_respawns: u64,
    /// Requests waiting in the scheduler's pending queue.
    pub scheduler_pending: u64,
    /// Capacity of the scheduler's pending queue.
    pub scheduler_capacity: u64,
    /// Coalesced batches dispatched so far.
    pub batches_dispatched: u64,
    /// Requests that rode in a batch with at least one other request.
    pub requests_coalesced: u64,
    /// Signatures dispatched through the scheduler.
    pub signatures_dispatched: u64,
    /// Requests shed with an `Overloaded` response.
    pub requests_shed: u64,
    /// The scheduler's current adaptive coalescing delay, in microseconds.
    pub coalesce_delay_micros: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Message of the most recent worker panic, if any.
    pub last_panic: Option<String>,
}

/// What a graceful drain accomplished.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainSummary {
    /// Classify requests flushed out of the scheduler during the drain.
    pub requests_flushed: u64,
    /// Whether the drain hook wrote a checkpoint before exit.
    pub checkpoint_written: bool,
    /// The snapshot version at drain completion.
    pub final_version: u64,
}

/// One decoded wire message.
///
/// Tenant fields (`tenant: Option<String>`) address the multi-tenant
/// registry: `None` is the server's default tenant and encodes as a plain
/// format-1 frame; `Some(id)` requires a format-2 frame. A decoded format-1
/// frame always carries `tenant: None`.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Classify a batch of signatures.
    ClassifyRequest {
        /// The tenant to classify against (`None` = default tenant).
        tenant: Option<String>,
        /// The signatures to classify, in request order.
        signatures: Vec<BinaryVector>,
    },
    /// Ask for a [`WireHealth`] report.
    HealthRequest,
    /// Ask the server to drain gracefully — or, with a tenant on a registry
    /// server, flush just that tenant's queued training work.
    DrainRequest {
        /// The tenant to drain (`None` = the whole server).
        tenant: Option<String>,
    },
    /// Feed labelled training examples to a tenant (format 2 only).
    TrainRequest {
        /// The tenant to train (`None` = default tenant).
        tenant: Option<String>,
        /// `(signature, label id)` pairs, in feed order.
        examples: Vec<(BinaryVector, u64)>,
    },
    /// Per-signature verdicts, in request order.
    ClassifyResponse {
        /// One prediction per requested signature.
        predictions: Vec<Prediction>,
    },
    /// Acknowledgement of a [`TrainRequest`](WireMessage::TrainRequest):
    /// the examples are queued for the tenant's trainer (format 2 only).
    TrainResponse {
        /// Examples accepted into the tenant's pending queue.
        accepted: u64,
    },
    /// The health report.
    HealthResponse(Box<WireHealth>),
    /// The drain outcome.
    DrainResponse(DrainSummary),
    /// The request was shed by admission control; retry after backoff.
    OverloadedResponse {
        /// Queue depth observed when the request was shed.
        queue_depth: u64,
        /// Queue capacity of the stage that shed it.
        queue_capacity: u64,
    },
    /// The request failed; the connection may be closed by the server for
    /// [`ErrorCode::Malformed`].
    ErrorResponse {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn malformed(detail: impl Into<String>) -> WireError {
    WireError::Malformed {
        detail: detail.into(),
    }
}

/// A little-endian payload writer over a `Vec<u8>`.
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked little-endian payload reader.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| malformed("payload field runs past the payload end"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string field is not utf-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} unread bytes at the payload end",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Writes the format-2 tenant-id prefix: `u32` length, then the UTF-8
/// bytes. `None` — the default tenant — encodes as length 0.
///
/// # Panics
///
/// Panics if the id is empty (spell the default tenant as `None`) or longer
/// than [`MAX_TENANT_ID_BYTES`] — both are caller bugs, not wire conditions.
fn encode_tenant(enc: &mut Enc, tenant: &Option<String>) {
    match tenant {
        None => enc.u32(0),
        Some(id) => {
            assert!(
                !id.is_empty(),
                "empty tenant id: spell the default tenant as None"
            );
            assert!(
                id.len() <= MAX_TENANT_ID_BYTES,
                "tenant id of {} bytes exceeds the {MAX_TENANT_ID_BYTES}-byte cap",
                id.len()
            );
            enc.str(id);
        }
    }
}

/// Reads the format-2 tenant-id prefix; length 0 decodes as `None`.
fn decode_tenant(dec: &mut Dec<'_>) -> Result<Option<String>, WireError> {
    let len = dec.u32()? as usize;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_TENANT_ID_BYTES {
        return Err(malformed(format!(
            "tenant id of {len} bytes exceeds the {MAX_TENANT_ID_BYTES}-byte cap"
        )));
    }
    let bytes = dec.take(len)?;
    String::from_utf8(bytes.to_vec())
        .map(Some)
        .map_err(|_| malformed("tenant id is not utf-8"))
}

/// Encodes a message's payload, returning `(kind, payload, format)`. The
/// format is [`WIRE_FORMAT`] whenever the message is expressible in it —
/// byte-identical to the pre-tenant encoder — and [`WIRE_FORMAT_TENANT`]
/// only when a tenant id or a train kind forces it.
fn encode_payload(message: &WireMessage) -> (u8, Vec<u8>, u32) {
    let mut enc = Enc(Vec::new());
    let mut format = WIRE_FORMAT;
    let kind = match message {
        WireMessage::ClassifyRequest { tenant, signatures } => {
            if tenant.is_some() {
                format = WIRE_FORMAT_TENANT;
                encode_tenant(&mut enc, tenant);
            }
            enc.u32(signatures.len() as u32);
            let vector_len = signatures.first().map(|s| s.len()).unwrap_or(0);
            enc.u32(vector_len as u32);
            for signature in signatures {
                for &word in signature.as_words() {
                    enc.u64(word);
                }
            }
            kind::CLASSIFY_REQUEST
        }
        WireMessage::HealthRequest => kind::HEALTH_REQUEST,
        WireMessage::DrainRequest { tenant } => {
            if tenant.is_some() {
                format = WIRE_FORMAT_TENANT;
                encode_tenant(&mut enc, tenant);
            }
            kind::DRAIN_REQUEST
        }
        WireMessage::TrainRequest { tenant, examples } => {
            // Train kinds do not exist in format 1, so the prefix is always
            // present (length 0 for the default tenant).
            format = WIRE_FORMAT_TENANT;
            encode_tenant(&mut enc, tenant);
            enc.u32(examples.len() as u32);
            let vector_len = examples.first().map(|(s, _)| s.len()).unwrap_or(0);
            enc.u32(vector_len as u32);
            for (signature, label) in examples {
                enc.u64(*label);
                for &word in signature.as_words() {
                    enc.u64(word);
                }
            }
            kind::TRAIN_REQUEST
        }
        WireMessage::TrainResponse { accepted } => {
            format = WIRE_FORMAT_TENANT;
            enc.u64(*accepted);
            kind::TRAIN_RESPONSE
        }
        WireMessage::ClassifyResponse { predictions } => {
            enc.u32(predictions.len() as u32);
            for prediction in predictions {
                match prediction {
                    Prediction::Unknown => enc.u8(0),
                    Prediction::Known {
                        label,
                        neuron,
                        distance,
                    } => {
                        enc.u8(1);
                        enc.u64(label.id() as u64);
                        enc.u64(*neuron as u64);
                        // Bit-exact: the f64 travels as its raw bits, so a
                        // wire round-trip is bit-identical to the in-process
                        // prediction.
                        enc.u64(distance.to_bits());
                    }
                }
            }
            kind::CLASSIFY_RESPONSE
        }
        WireMessage::HealthResponse(health) => {
            enc.u64(health.snapshot_version);
            enc.u64(health.workers_configured);
            enc.u64(health.workers_alive);
            enc.u64(health.engine_queue_depth);
            enc.u64(health.engine_queue_capacity);
            enc.u64(health.worker_panics);
            enc.u64(health.worker_respawns);
            enc.u64(health.scheduler_pending);
            enc.u64(health.scheduler_capacity);
            enc.u64(health.batches_dispatched);
            enc.u64(health.requests_coalesced);
            enc.u64(health.signatures_dispatched);
            enc.u64(health.requests_shed);
            enc.u64(health.coalesce_delay_micros);
            enc.u8(u8::from(health.draining));
            match &health.last_panic {
                None => enc.u8(0),
                Some(message) => {
                    enc.u8(1);
                    enc.str(message);
                }
            }
            kind::HEALTH_RESPONSE
        }
        WireMessage::DrainResponse(summary) => {
            enc.u64(summary.requests_flushed);
            enc.u8(u8::from(summary.checkpoint_written));
            enc.u64(summary.final_version);
            kind::DRAIN_RESPONSE
        }
        WireMessage::OverloadedResponse {
            queue_depth,
            queue_capacity,
        } => {
            enc.u64(*queue_depth);
            enc.u64(*queue_capacity);
            kind::OVERLOADED_RESPONSE
        }
        WireMessage::ErrorResponse { code, message } => {
            enc.u8(code.to_byte());
            enc.str(message);
            kind::ERROR_RESPONSE
        }
    };
    (kind, enc.0, format)
}

fn decode_payload(format: u32, kind: u8, payload: &[u8]) -> Result<WireMessage, WireError> {
    let mut dec = Dec::new(payload);
    let message = match kind {
        kind::CLASSIFY_REQUEST => {
            let tenant = if format >= WIRE_FORMAT_TENANT {
                decode_tenant(&mut dec)?
            } else {
                None
            };
            let count = dec.u32()?;
            if count > MAX_REQUEST_SIGNATURES {
                return Err(malformed(format!(
                    "{count} signatures exceeds the per-request cap of {MAX_REQUEST_SIGNATURES}"
                )));
            }
            let vector_len = dec.u32()?;
            if vector_len > MAX_VECTOR_BITS {
                return Err(malformed(format!(
                    "{vector_len}-bit signatures exceed the {MAX_VECTOR_BITS}-bit cap"
                )));
            }
            let words_per = (vector_len as usize).div_ceil(64);
            let mut signatures = Vec::with_capacity(count as usize);
            for index in 0..count {
                let raw = dec.take(words_per * 8)?;
                let words: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|chunk| {
                        let mut bytes = [0u8; 8];
                        bytes.copy_from_slice(chunk);
                        u64::from_le_bytes(bytes)
                    })
                    .collect();
                let signature =
                    BinaryVector::from_words(words, vector_len as usize).map_err(|e| {
                        malformed(format!(
                            "signature {index} violates the packing invariant: {e}"
                        ))
                    })?;
                signatures.push(signature);
            }
            WireMessage::ClassifyRequest { tenant, signatures }
        }
        kind::HEALTH_REQUEST => WireMessage::HealthRequest,
        kind::DRAIN_REQUEST => {
            let tenant = if format >= WIRE_FORMAT_TENANT {
                decode_tenant(&mut dec)?
            } else {
                None
            };
            WireMessage::DrainRequest { tenant }
        }
        kind::TRAIN_REQUEST if format >= WIRE_FORMAT_TENANT => {
            let tenant = decode_tenant(&mut dec)?;
            let count = dec.u32()?;
            if count > MAX_TRAIN_EXAMPLES {
                return Err(malformed(format!(
                    "{count} examples exceeds the per-request cap of {MAX_TRAIN_EXAMPLES}"
                )));
            }
            let vector_len = dec.u32()?;
            if vector_len > MAX_VECTOR_BITS {
                return Err(malformed(format!(
                    "{vector_len}-bit signatures exceed the {MAX_VECTOR_BITS}-bit cap"
                )));
            }
            let words_per = (vector_len as usize).div_ceil(64);
            let mut examples = Vec::with_capacity(count as usize);
            for index in 0..count {
                let label = dec.u64()?;
                let raw = dec.take(words_per * 8)?;
                let words: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|chunk| {
                        let mut bytes = [0u8; 8];
                        bytes.copy_from_slice(chunk);
                        u64::from_le_bytes(bytes)
                    })
                    .collect();
                let signature =
                    BinaryVector::from_words(words, vector_len as usize).map_err(|e| {
                        malformed(format!(
                            "example {index} violates the packing invariant: {e}"
                        ))
                    })?;
                examples.push((signature, label));
            }
            WireMessage::TrainRequest { tenant, examples }
        }
        kind::TRAIN_RESPONSE if format >= WIRE_FORMAT_TENANT => WireMessage::TrainResponse {
            accepted: dec.u64()?,
        },
        kind::CLASSIFY_RESPONSE => {
            let count = dec.u32()?;
            if count > MAX_REQUEST_SIGNATURES {
                return Err(malformed(format!(
                    "{count} predictions exceeds the per-request cap of {MAX_REQUEST_SIGNATURES}"
                )));
            }
            let mut predictions = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let prediction = match dec.u8()? {
                    0 => Prediction::Unknown,
                    1 => Prediction::Known {
                        label: ObjectLabel::new(dec.u64()? as usize),
                        neuron: dec.u64()? as usize,
                        distance: f64::from_bits(dec.u64()?),
                    },
                    other => return Err(malformed(format!("unknown prediction tag {other}"))),
                };
                predictions.push(prediction);
            }
            WireMessage::ClassifyResponse { predictions }
        }
        kind::HEALTH_RESPONSE => {
            let mut health = WireHealth {
                snapshot_version: dec.u64()?,
                workers_configured: dec.u64()?,
                workers_alive: dec.u64()?,
                engine_queue_depth: dec.u64()?,
                engine_queue_capacity: dec.u64()?,
                worker_panics: dec.u64()?,
                worker_respawns: dec.u64()?,
                scheduler_pending: dec.u64()?,
                scheduler_capacity: dec.u64()?,
                batches_dispatched: dec.u64()?,
                requests_coalesced: dec.u64()?,
                signatures_dispatched: dec.u64()?,
                requests_shed: dec.u64()?,
                coalesce_delay_micros: dec.u64()?,
                draining: dec.u8()? != 0,
                last_panic: None,
            };
            health.last_panic = match dec.u8()? {
                0 => None,
                1 => Some(dec.str()?),
                other => return Err(malformed(format!("unknown last-panic tag {other}"))),
            };
            WireMessage::HealthResponse(Box::new(health))
        }
        kind::DRAIN_RESPONSE => WireMessage::DrainResponse(DrainSummary {
            requests_flushed: dec.u64()?,
            checkpoint_written: dec.u8()? != 0,
            final_version: dec.u64()?,
        }),
        kind::OVERLOADED_RESPONSE => WireMessage::OverloadedResponse {
            queue_depth: dec.u64()?,
            queue_capacity: dec.u64()?,
        },
        kind::ERROR_RESPONSE => WireMessage::ErrorResponse {
            code: ErrorCode::from_byte(dec.u8()?)?,
            message: dec.str()?,
        },
        other => return Err(WireError::UnknownKind { found: other }),
    };
    dec.finish()?;
    Ok(message)
}

/// Seals `payload` into a complete frame: header (stamped with `format`),
/// payload, checksum.
fn seal_frame(format: u32, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(WIRE_HEADER_LEN + payload.len() + WIRE_CHECKSUM_LEN);
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.extend_from_slice(&format.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    let sum = checksum(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

/// Encodes `message` into one complete frame (header + payload + checksum).
/// The frame is stamped format 1 unless the message needs tenant addressing
/// (see [`encode_payload`]).
pub fn encode_message(message: &WireMessage) -> Vec<u8> {
    let (kind, payload, format) = encode_payload(message);
    seal_frame(format, kind, &payload)
}

/// Encodes a default-tenant classify request straight from a signature
/// slice — no intermediate [`WireMessage`], so load generators can
/// pre-encode frames once and replay them.
pub fn encode_classify_request(signatures: &[BinaryVector]) -> Vec<u8> {
    encode_classify_request_for(None, signatures)
}

/// Encodes a classify request for `tenant` straight from a signature slice.
/// `None` — the default tenant — produces a format-1 frame byte-identical
/// to [`encode_classify_request`].
///
/// # Panics
///
/// Panics if `tenant` is `Some` of an empty or over-long
/// (> [`MAX_TENANT_ID_BYTES`]) id — caller bugs, not wire conditions.
pub fn encode_classify_request_for(tenant: Option<&str>, signatures: &[BinaryVector]) -> Vec<u8> {
    let mut enc = Enc(Vec::new());
    let format = match tenant {
        None => WIRE_FORMAT,
        Some(id) => {
            encode_tenant(&mut enc, &Some(id.to_string()));
            WIRE_FORMAT_TENANT
        }
    };
    enc.u32(signatures.len() as u32);
    let vector_len = signatures.first().map(|s| s.len()).unwrap_or(0);
    enc.u32(vector_len as u32);
    for signature in signatures {
        for &word in signature.as_words() {
            enc.u64(word);
        }
    }
    seal_frame(format, kind::CLASSIFY_REQUEST, &enc.0)
}

/// Validates a frame header, returning `(format, kind, payload_len)`.
/// `max_format` bounds the accepted format range — [`WIRE_FORMAT_TENANT`]
/// for this decoder, [`WIRE_FORMAT`] to emulate a pre-tenant peer.
fn decode_header(
    header: &[u8; WIRE_HEADER_LEN],
    max_format: u32,
) -> Result<(u32, u8, usize), WireError> {
    if header[..8] != WIRE_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&header[..8]);
        return Err(WireError::BadMagic { found });
    }
    let format = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if format < WIRE_FORMAT || format > max_format {
        return Err(WireError::UnsupportedFormat { found: format });
    }
    let kind = header[12];
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&header[13..21]);
    let declared = u64::from_le_bytes(len_bytes);
    if declared > MAX_WIRE_PAYLOAD {
        return Err(WireError::Oversized {
            declared,
            max: MAX_WIRE_PAYLOAD,
        });
    }
    Ok((format, kind, declared as usize))
}

/// Decodes one frame from the front of `bytes`, returning the message and
/// the number of bytes consumed (for buffers that may hold further frames).
pub fn decode_message(bytes: &[u8]) -> Result<(WireMessage, usize), WireError> {
    decode_message_with_max_format(bytes, WIRE_FORMAT_TENANT)
}

/// [`decode_message`] with an explicit format ceiling: passing
/// [`WIRE_FORMAT`] emulates a pre-tenant decoder, which must reject every
/// format-2 frame with a typed [`WireError::UnsupportedFormat`] *before*
/// touching the payload — the backward-compatibility contract the
/// cross-decode matrix in `tests/wire_corruption.rs` pins down.
pub fn decode_message_with_max_format(
    bytes: &[u8],
    max_format: u32,
) -> Result<(WireMessage, usize), WireError> {
    if bytes.len() < WIRE_HEADER_LEN {
        return Err(WireError::TooShort { len: bytes.len() });
    }
    let mut header = [0u8; WIRE_HEADER_LEN];
    header.copy_from_slice(&bytes[..WIRE_HEADER_LEN]);
    let (format, kind, payload_len) = decode_header(&header, max_format)?;
    let total = WIRE_HEADER_LEN + payload_len + WIRE_CHECKSUM_LEN;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            declared: total,
            available: bytes.len(),
        });
    }
    let body = &bytes[..WIRE_HEADER_LEN + payload_len];
    let mut stored_bytes = [0u8; 8];
    stored_bytes.copy_from_slice(&bytes[WIRE_HEADER_LEN + payload_len..total]);
    let stored = u64::from_le_bytes(stored_bytes);
    let computed = checksum(body);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    let message = decode_payload(format, kind, &body[WIRE_HEADER_LEN..])?;
    Ok((message, total))
}

/// Decodes a buffer that must hold exactly one frame; trailing bytes are
/// rejected ([`WireError::TrailingBytes`]).
pub fn decode_message_exact(bytes: &[u8]) -> Result<WireMessage, WireError> {
    let (message, consumed) = decode_message(bytes)?;
    if consumed != bytes.len() {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - consumed,
        });
    }
    Ok(message)
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed between messages); an EOF anywhere inside
/// a frame is [`WireError::Truncated`].
pub fn read_message<R: Read>(reader: &mut R) -> Result<Option<WireMessage>, WireError> {
    let mut header = [0u8; WIRE_HEADER_LEN];
    let mut filled = 0;
    while filled < WIRE_HEADER_LEN {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    declared: WIRE_HEADER_LEN,
                    available: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let (format, kind, payload_len) = decode_header(&header, WIRE_FORMAT_TENANT)?;
    let mut rest = vec![0u8; payload_len + WIRE_CHECKSUM_LEN];
    reader.read_exact(&mut rest).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                declared: WIRE_HEADER_LEN + payload_len + WIRE_CHECKSUM_LEN,
                available: WIRE_HEADER_LEN,
            }
        } else {
            WireError::Io(e)
        }
    })?;
    let stored = {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&rest[payload_len..]);
        u64::from_le_bytes(bytes)
    };
    let mut body = Vec::with_capacity(WIRE_HEADER_LEN + payload_len);
    body.extend_from_slice(&header);
    body.extend_from_slice(&rest[..payload_len]);
    let computed = checksum(&body);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    decode_payload(format, kind, &body[WIRE_HEADER_LEN..]).map(Some)
}

/// Writes one frame to a stream.
pub fn write_message<W: Write>(writer: &mut W, message: &WireMessage) -> Result<(), WireError> {
    let frame = encode_message(message);
    writer.write_all(&frame)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_messages() -> Vec<WireMessage> {
        let mut rng = StdRng::seed_from_u64(11);
        vec![
            WireMessage::ClassifyRequest {
                tenant: None,
                signatures: (0..3)
                    .map(|_| BinaryVector::random(768, &mut rng))
                    .collect(),
            },
            WireMessage::ClassifyRequest {
                tenant: Some("tenant-a".to_string()),
                signatures: (0..2)
                    .map(|_| BinaryVector::random(768, &mut rng))
                    .collect(),
            },
            WireMessage::ClassifyRequest {
                tenant: None,
                signatures: vec![],
            },
            WireMessage::HealthRequest,
            WireMessage::DrainRequest { tenant: None },
            WireMessage::DrainRequest {
                tenant: Some("tenant-b".to_string()),
            },
            WireMessage::TrainRequest {
                tenant: None,
                examples: vec![(BinaryVector::random(80, &mut rng), 2)],
            },
            WireMessage::TrainRequest {
                tenant: Some("tenant-c".to_string()),
                examples: (0..3)
                    .map(|i| (BinaryVector::random(80, &mut rng), i % 2))
                    .collect(),
            },
            WireMessage::TrainResponse { accepted: 3 },
            WireMessage::ClassifyResponse {
                predictions: vec![
                    Prediction::Unknown,
                    Prediction::Known {
                        label: ObjectLabel::new(7),
                        neuron: 12,
                        distance: 34.0,
                    },
                ],
            },
            WireMessage::HealthResponse(Box::new(WireHealth {
                snapshot_version: 3,
                workers_configured: 4,
                workers_alive: 4,
                engine_queue_depth: 1,
                engine_queue_capacity: 16,
                worker_panics: 0,
                worker_respawns: 0,
                scheduler_pending: 2,
                scheduler_capacity: 1024,
                batches_dispatched: 9,
                requests_coalesced: 5,
                signatures_dispatched: 400,
                requests_shed: 1,
                coalesce_delay_micros: 250,
                draining: false,
                last_panic: Some("worker 2 fell over".to_string()),
            })),
            WireMessage::DrainResponse(DrainSummary {
                requests_flushed: 17,
                checkpoint_written: true,
                final_version: 5,
            }),
            WireMessage::OverloadedResponse {
                queue_depth: 16,
                queue_capacity: 16,
            },
            WireMessage::ErrorResponse {
                code: ErrorCode::Draining,
                message: "drain in progress".to_string(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips_exactly() {
        for message in sample_messages() {
            let frame = encode_message(&message);
            let decoded = decode_message_exact(&frame).expect("pristine frame must decode");
            assert_eq!(decoded, message);
            // And through the stream reader.
            let mut cursor = std::io::Cursor::new(frame);
            let streamed = read_message(&mut cursor)
                .expect("stream decode")
                .expect("not eof");
            assert_eq!(streamed, message);
        }
    }

    #[test]
    fn preencoded_classify_frames_match_encode_message() {
        let mut rng = StdRng::seed_from_u64(3);
        let signatures: Vec<BinaryVector> = (0..4)
            .map(|_| BinaryVector::random(100, &mut rng))
            .collect();
        assert_eq!(
            encode_classify_request(&signatures),
            encode_message(&WireMessage::ClassifyRequest {
                tenant: None,
                signatures: signatures.clone(),
            })
        );
        assert_eq!(
            encode_classify_request_for(Some("t9"), &signatures),
            encode_message(&WireMessage::ClassifyRequest {
                tenant: Some("t9".to_string()),
                signatures,
            })
        );
    }

    #[test]
    fn default_tenant_messages_encode_as_format_1_byte_identically() {
        // The compatibility contract: a new client talking to the default
        // tenant emits the exact bytes a pre-tenant client would.
        let mut rng = StdRng::seed_from_u64(29);
        let signatures: Vec<BinaryVector> =
            (0..2).map(|_| BinaryVector::random(96, &mut rng)).collect();
        for message in [
            WireMessage::ClassifyRequest {
                tenant: None,
                signatures,
            },
            WireMessage::DrainRequest { tenant: None },
        ] {
            let frame = encode_message(&message);
            let format = u32::from_le_bytes([frame[8], frame[9], frame[10], frame[11]]);
            assert_eq!(format, WIRE_FORMAT, "default tenant must stay format 1");
        }
        // And tenant-addressed (or train) messages are stamped format 2.
        for message in [
            WireMessage::ClassifyRequest {
                tenant: Some("t".to_string()),
                signatures: vec![],
            },
            WireMessage::DrainRequest {
                tenant: Some("t".to_string()),
            },
            WireMessage::TrainRequest {
                tenant: None,
                examples: vec![],
            },
            WireMessage::TrainResponse { accepted: 0 },
        ] {
            let frame = encode_message(&message);
            let format = u32::from_le_bytes([frame[8], frame[9], frame[10], frame[11]]);
            assert_eq!(format, WIRE_FORMAT_TENANT);
        }
    }

    #[test]
    fn pre_tenant_decoder_rejects_format_2_with_a_typed_error() {
        let frame = encode_message(&WireMessage::ClassifyRequest {
            tenant: Some("tenant-x".to_string()),
            signatures: vec![],
        });
        assert!(matches!(
            decode_message_with_max_format(&frame, WIRE_FORMAT),
            Err(WireError::UnsupportedFormat { found: 2 })
        ));
    }

    #[test]
    fn oversized_tenant_ids_are_rejected_typed() {
        // Build a format-2 classify frame whose tenant length claims more
        // bytes than the cap; the decoder must object before reading them.
        let mut enc = Enc(Vec::new());
        enc.u32((MAX_TENANT_ID_BYTES + 1) as u32);
        enc.0
            .extend(std::iter::repeat_n(b'a', MAX_TENANT_ID_BYTES + 1));
        enc.u32(0); // count
        enc.u32(0); // vector_len
        let frame = seal_frame(WIRE_FORMAT_TENANT, 0x01, &enc.0);
        assert!(matches!(
            decode_message_exact(&frame),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn train_kinds_are_unknown_in_format_1_frames() {
        // A format-1 frame carrying a train kind is a protocol violation:
        // the kind does not exist below format 2.
        let frame = seal_frame(WIRE_FORMAT, 0x04, &[]);
        assert!(matches!(
            decode_message_exact(&frame),
            Err(WireError::UnknownKind { found: 0x04 })
        ));
        let frame = seal_frame(WIRE_FORMAT, 0x84, &[]);
        assert!(matches!(
            decode_message_exact(&frame),
            Err(WireError::UnknownKind { found: 0x84 })
        ));
    }

    #[test]
    fn clean_eof_is_none_and_concatenated_frames_both_decode() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_message(&WireMessage::HealthRequest));
        bytes.extend_from_slice(&encode_message(&WireMessage::DrainRequest { tenant: None }));
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            Some(WireMessage::HealthRequest)
        );
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            Some(WireMessage::DrainRequest { tenant: None })
        );
        assert_eq!(read_message(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut frame = encode_message(&WireMessage::HealthRequest);
        frame[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(WireError::Oversized { .. })
        ));
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_message(&mut cursor),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn set_tail_bits_are_rejected_not_masked() {
        // A 100-bit signature occupies two words; bit 100 of the payload is
        // beyond `len` and must be rejected by the packing validation.
        let signature = BinaryVector::zeros(100);
        let frame = encode_message(&WireMessage::ClassifyRequest {
            tenant: None,
            signatures: vec![signature],
        });
        // Payload layout: count u32 | vector_len u32 | word0 | word1.
        // Set the top bit of word1 (frame offset: header 21 + 8 + 8 + 7).
        let mut corrupt = frame.clone();
        let byte = WIRE_HEADER_LEN + 4 + 4 + 15;
        corrupt[byte] |= 0x80;
        // Re-seal the checksum so only the packing check can object.
        let body_len = corrupt.len() - WIRE_CHECKSUM_LEN;
        let sum = checksum(&corrupt[..body_len]);
        corrupt[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_message_exact(&corrupt),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn checksum_matches_the_documented_fnv_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checksum(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
