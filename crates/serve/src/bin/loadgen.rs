//! The `loadgen` binary: open- and closed-loop load against a `bsom-serve`
//! endpoint.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 --rate 2000 --duration-ms 5000
//! loadgen --addr 127.0.0.1:7171 --closed-in-flight 8 --batch 150 --drain
//! ```
//!
//! Open mode offers a seeded Poisson arrival process and measures latency
//! from each request's *scheduled* arrival time (no coordinated omission);
//! closed mode keeps a fixed number of requests in flight and measures the
//! throughput ceiling. `--drain` sends a graceful-drain frame afterwards
//! and fails unless the server acknowledges it. `--json` prints the full
//! report for scripts.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use bsom_serve::client::ServeClient;
use bsom_serve::loadgen::{self, ArrivalMode, LoadgenConfig};

struct Args {
    addr: String,
    connections: usize,
    batch_size: usize,
    vector_len: usize,
    seed: u64,
    rate: Option<f64>,
    in_flight: Option<usize>,
    duration_ms: u64,
    warmup_ms: u64,
    drain: bool,
    json: bool,
}

impl Args {
    fn defaults() -> Args {
        Args {
            addr: String::new(),
            connections: 2,
            batch_size: 1,
            vector_len: 768,
            seed: 42,
            rate: None,
            in_flight: None,
            duration_ms: 2000,
            warmup_ms: 200,
            drain: false,
            json: false,
        }
    }
}

const USAGE: &str = "usage: loadgen --addr HOST:PORT [--rate RPS | --closed-in-flight N] \
[--connections N] [--batch SIGS] [--vector-len BITS] [--duration-ms N] [--warmup-ms N] \
[--seed N] [--drain] [--json]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::defaults();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--connections" => args.connections = parse(&value("--connections")?)?,
            "--batch" => args.batch_size = parse(&value("--batch")?)?,
            "--vector-len" => args.vector_len = parse(&value("--vector-len")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--rate" => args.rate = Some(parse(&value("--rate")?)?),
            "--closed-in-flight" => args.in_flight = Some(parse(&value("--closed-in-flight")?)?),
            "--duration-ms" => args.duration_ms = parse(&value("--duration-ms")?)?,
            "--warmup-ms" => args.warmup_ms = parse(&value("--warmup-ms")?)?,
            "--drain" => args.drain = true,
            "--json" => args.json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    if args.rate.is_some() && args.in_flight.is_some() {
        return Err("--rate and --closed-in-flight are mutually exclusive".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("cannot parse {raw:?}: {e}"))
}

fn main() -> ExitCode {
    // Same fail-fast contract as the server: a bad BSOM_DISPATCH dies here.
    if let Err(error) = bsom_signature::validate_env_dispatch() {
        eprintln!("loadgen: {error}");
        return ExitCode::from(2);
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let addr: SocketAddr = match args.addr.to_socket_addrs().map(|mut a| a.next()) {
        Ok(Some(addr)) => addr,
        _ => {
            eprintln!("loadgen: cannot resolve {}", args.addr);
            return ExitCode::from(2);
        }
    };
    let mode = match (args.rate, args.in_flight) {
        (Some(rate_rps), _) => ArrivalMode::Open { rate_rps },
        (None, Some(in_flight)) => ArrivalMode::Closed { in_flight },
        (None, None) => ArrivalMode::Closed { in_flight: 4 },
    };
    let config = LoadgenConfig {
        addr,
        connections: args.connections,
        batch_size: args.batch_size,
        vector_len: args.vector_len,
        seed: args.seed,
        mode,
        duration: Duration::from_millis(args.duration_ms),
        warmup: Duration::from_millis(args.warmup_ms),
    };
    let report = match loadgen::run(&config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("loadgen: run failed: {error}");
            return ExitCode::from(1);
        }
    };
    if args.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(error) => {
                eprintln!("loadgen: cannot serialize report: {error}");
                return ExitCode::from(1);
            }
        }
    } else {
        println!(
            "loadgen: {} mode, {} conns x batch {} — sent {}, ok {}, overloaded {}, errors {}",
            report.mode,
            report.connections,
            report.batch_size,
            report.sent,
            report.ok,
            report.overloaded,
            report.errors
        );
        println!(
            "loadgen: {:.0} req/s ({:.0} sigs/s) over {:.2}s; latency p50 {:.3}ms p99 {:.3}ms p999 {:.3}ms max {:.3}ms",
            report.requests_per_second,
            report.signatures_per_second,
            report.elapsed_seconds,
            report.latency.p50_ms,
            report.latency.p99_ms,
            report.latency.p999_ms,
            report.latency.max_ms
        );
    }
    if args.drain {
        let mut client = match ServeClient::connect(addr) {
            Ok(client) => client,
            Err(error) => {
                eprintln!("loadgen: cannot connect for drain: {error}");
                return ExitCode::from(1);
            }
        };
        match client.drain() {
            Ok(summary) => eprintln!(
                "loadgen: server drained — {} requests flushed, checkpoint_written={}, final v{}",
                summary.requests_flushed, summary.checkpoint_written, summary.final_version
            ),
            Err(error) => {
                eprintln!("loadgen: drain failed: {error}");
                return ExitCode::from(1);
            }
        }
    }
    if report.errors > 0 || report.ok == 0 {
        eprintln!(
            "loadgen: FAILED — {} errors, {} ok responses",
            report.errors, report.ok
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
