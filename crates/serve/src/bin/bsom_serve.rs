//! The `bsom-serve` binary: a train-while-serve bSOM behind the wire
//! protocol.
//!
//! ```text
//! bsom-serve --addr 127.0.0.1:7171 --neurons 40 --labels 4
//! ```
//!
//! Builds a synthetic labelled corpus, starts a `SomService` with a trainer
//! thread feeding and publishing continuously, and serves classify /
//! health / drain requests until a client sends a drain frame (or the
//! process is killed). With `--checkpoint PATH` the graceful drain stops
//! the trainer and writes a crash-safe checkpoint before the drain response
//! goes out. With `--addr-file PATH` the bound address (useful with port 0)
//! is written for scripts to pick up.
//!
//! With `--tenants N` the binary fronts a [`MapRegistry`] instead of one
//! map: N tenants named `tenant-0` .. `tenant-{N-1}` (format-1 frames route
//! to `tenant-0`), a training pump thread spreading `--tick-budget` steps
//! per tick fairly across tenants, and optional LRU eviction to
//! `--spill-dir` when more than `--max-resident` tenants are resident.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bsom_engine::{EngineConfig, MapRegistry, RegistryConfig};
use bsom_serve::bench::{bench_service, synthetic_corpus};
use bsom_serve::scheduler::SchedulerConfig;
use bsom_serve::server::{DrainHook, ServeConfig, Server};
use bsom_som::{BSom, BSomConfig, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    addr: String,
    addr_file: Option<String>,
    checkpoint: Option<String>,
    neurons: usize,
    vector_len: usize,
    labels: usize,
    seed: u64,
    max_batch_signatures: usize,
    max_delay_micros: u64,
    queue_capacity: usize,
    batch_of_one: bool,
    tenants: usize,
    max_resident: usize,
    spill_dir: Option<String>,
    tick_budget: u64,
}

impl Args {
    fn defaults() -> Args {
        Args {
            addr: "127.0.0.1:0".to_string(),
            addr_file: None,
            checkpoint: None,
            neurons: 40,
            vector_len: 768,
            labels: 4,
            seed: 42,
            max_batch_signatures: 256,
            max_delay_micros: 1000,
            queue_capacity: 1024,
            batch_of_one: false,
            tenants: 0,
            max_resident: 0,
            spill_dir: None,
            tick_budget: 256,
        }
    }
}

const USAGE: &str = "usage: bsom-serve [--addr HOST:PORT] [--addr-file PATH] \
[--checkpoint PATH] [--neurons N] [--vector-len BITS] [--labels N] [--seed N] \
[--max-batch SIGS] [--max-delay-micros N] [--queue-capacity N] [--batch-of-one] \
[--tenants N] [--max-resident N] [--spill-dir PATH] [--tick-budget STEPS]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::defaults();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--neurons" => args.neurons = parse(&value("--neurons")?)?,
            "--vector-len" => args.vector_len = parse(&value("--vector-len")?)?,
            "--labels" => args.labels = parse(&value("--labels")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--max-batch" => args.max_batch_signatures = parse(&value("--max-batch")?)?,
            "--max-delay-micros" => args.max_delay_micros = parse(&value("--max-delay-micros")?)?,
            "--queue-capacity" => args.queue_capacity = parse(&value("--queue-capacity")?)?,
            "--batch-of-one" => args.batch_of_one = true,
            "--tenants" => args.tenants = parse(&value("--tenants")?)?,
            "--max-resident" => args.max_resident = parse(&value("--max-resident")?)?,
            "--spill-dir" => args.spill_dir = Some(value("--spill-dir")?),
            "--tick-budget" => args.tick_budget = parse(&value("--tick-budget")?)?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("cannot parse {raw:?}: {e}"))
}

/// The multi-tenant path: a [`MapRegistry`] of `--tenants` synthetic maps
/// behind [`Server::bind_registry`], with a training pump thread draining
/// the tenants' pending queues fairly (`--tick-budget` steps per tick).
fn run_registry(args: &Args, dispatch: bsom_signature::Dispatch) -> ExitCode {
    if args.max_resident > 0 && args.spill_dir.is_none() {
        eprintln!("bsom-serve: --max-resident needs --spill-dir to evict into\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut config = RegistryConfig::new(EngineConfig::default().with_publish_every_steps(64));
    if let Some(dir) = &args.spill_dir {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("bsom-serve: cannot create spill dir {dir}: {error}");
            return ExitCode::from(2);
        }
        config = config.with_spill_dir(dir);
    }
    if args.max_resident > 0 {
        config = config.with_max_resident(args.max_resident);
    }
    let registry = Arc::new(MapRegistry::new(config));
    let corpus = synthetic_corpus(args.vector_len, args.labels, 8, 24, args.seed);
    for tenant in 0..args.tenants {
        let som = BSom::new(
            BSomConfig::new(args.neurons, args.vector_len),
            &mut StdRng::seed_from_u64(args.seed.wrapping_add(tenant as u64)),
        );
        if let Err(error) = registry.create_tenant(
            format!("tenant-{tenant}"),
            som,
            TrainSchedule::new(usize::MAX),
            &corpus,
        ) {
            eprintln!("bsom-serve: cannot create tenant-{tenant}: {error}");
            return ExitCode::from(1);
        }
    }

    // The pump is what turns wire-fed examples into training steps; the
    // drain hook stops it, after which the server's own drain path flushes
    // whatever is still pending.
    let stop = Arc::new(AtomicBool::new(false));
    let pump_stop = Arc::clone(&stop);
    let pump_registry = Arc::clone(&registry);
    let budget = args.tick_budget;
    let pump = std::thread::spawn(move || {
        while !pump_stop.load(Ordering::Relaxed) {
            let report = pump_registry.train_tick(budget);
            for (tenant, error) in &report.failures {
                eprintln!("bsom-serve: tenant {tenant} failed a training step: {error}");
            }
            if report.steps == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    });
    let drain_hook: DrainHook = Box::new(move || {
        stop.store(true, Ordering::Relaxed);
        let _ = pump.join();
        false
    });

    let server = match Server::bind_registry(
        Arc::clone(&registry),
        "tenant-0",
        args.addr.as_str(),
        ServeConfig::default(),
        Some(drain_hook),
    ) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("bsom-serve: cannot bind {}: {error}", args.addr);
            return ExitCode::from(1);
        }
    };
    let local_addr: SocketAddr = server.local_addr();
    if let Some(path) = &args.addr_file {
        if let Err(error) = std::fs::write(path, local_addr.to_string()) {
            eprintln!("bsom-serve: cannot write --addr-file {path}: {error}");
            return ExitCode::from(1);
        }
    }
    eprintln!(
        "bsom-serve: serving {} tenants of {} neurons x {} bits on {local_addr} \
         (dispatch {dispatch:?}, max_resident {}); send a drain frame to stop",
        args.tenants, args.neurons, args.vector_len, args.max_resident
    );

    let summary = server.wait_until_drained();
    server.join();
    let stats = registry.stats();
    eprintln!(
        "bsom-serve: drained cleanly — {} training steps flushed, {} total steps, \
         {} evictions, {} reloads, final default-tenant snapshot v{}",
        summary.requests_flushed,
        stats.steps_total,
        stats.evictions_total,
        stats.reloads_total,
        summary.final_version
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // Fail fast on a bad BSOM_DISPATCH before any map exists.
    let dispatch = match bsom_signature::validate_env_dispatch() {
        Ok(dispatch) => dispatch,
        Err(error) => {
            eprintln!("bsom-serve: {error}");
            return ExitCode::from(2);
        }
    };
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if args.tenants > 0 {
        return run_registry(&args, dispatch);
    }

    let corpus = synthetic_corpus(args.vector_len, args.labels, 32, 24, args.seed);
    let (service, trainer) = bench_service(args.neurons, args.vector_len, args.seed, &corpus);

    // The trainer runs until the drain hook stops it; the hook then owns
    // the trainer again and may write the checkpoint.
    let stop = Arc::new(AtomicBool::new(false));
    let trainer_stop = Arc::clone(&stop);
    let feed = corpus.clone();
    let trainer_thread = std::thread::spawn(move || {
        let mut trainer = trainer;
        let mut step = 0usize;
        'outer: loop {
            for (signature, label) in &feed {
                if trainer_stop.load(Ordering::Relaxed) {
                    break 'outer;
                }
                let _ = trainer.feed(signature, *label);
                step += 1;
                if step.is_multiple_of(64) {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        trainer
    });
    let checkpoint_path = args.checkpoint.clone();
    let drain_hook: DrainHook = Box::new(move || {
        stop.store(true, Ordering::Relaxed);
        let Ok(trainer) = trainer_thread.join() else {
            eprintln!("bsom-serve: trainer thread panicked; no checkpoint written");
            return false;
        };
        let Some(path) = checkpoint_path else {
            return false;
        };
        match trainer.write_checkpoint(&path) {
            Ok(info) => {
                eprintln!(
                    "bsom-serve: drain checkpoint written to {path} (snapshot v{})",
                    info.version
                );
                true
            }
            Err(error) => {
                eprintln!("bsom-serve: drain checkpoint failed: {error}");
                false
            }
        }
    });

    let scheduler = if args.batch_of_one {
        SchedulerConfig::batch_of_one()
    } else {
        SchedulerConfig {
            max_batch_signatures: args.max_batch_signatures,
            max_delay: Duration::from_micros(args.max_delay_micros),
            queue_capacity: args.queue_capacity,
            ..SchedulerConfig::default()
        }
    };
    let server = match Server::bind(
        service,
        args.addr.as_str(),
        ServeConfig {
            scheduler,
            ..ServeConfig::default()
        },
        Some(drain_hook),
    ) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("bsom-serve: cannot bind {}: {error}", args.addr);
            return ExitCode::from(1);
        }
    };
    let local_addr: SocketAddr = server.local_addr();
    if let Some(path) = &args.addr_file {
        if let Err(error) = std::fs::write(path, local_addr.to_string()) {
            eprintln!("bsom-serve: cannot write --addr-file {path}: {error}");
            return ExitCode::from(1);
        }
    }
    eprintln!(
        "bsom-serve: serving {} neurons x {} bits on {local_addr} (dispatch {dispatch:?}); \
         send a drain frame to stop",
        args.neurons, args.vector_len
    );

    let summary = server.wait_until_drained();
    server.join();
    eprintln!(
        "bsom-serve: drained cleanly — {} requests flushed, checkpoint_written={}, final snapshot v{}",
        summary.requests_flushed, summary.checkpoint_written, summary.final_version
    );
    ExitCode::SUCCESS
}
