//! The `bsom-serve` binary: a train-while-serve bSOM behind the wire
//! protocol.
//!
//! ```text
//! bsom-serve --addr 127.0.0.1:7171 --neurons 40 --labels 4
//! ```
//!
//! Builds a synthetic labelled corpus, starts a `SomService` with a trainer
//! thread feeding and publishing continuously, and serves classify /
//! health / drain requests until a client sends a drain frame (or the
//! process is killed). With `--checkpoint PATH` the graceful drain stops
//! the trainer and writes a crash-safe checkpoint before the drain response
//! goes out. With `--addr-file PATH` the bound address (useful with port 0)
//! is written for scripts to pick up.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bsom_serve::bench::{bench_service, synthetic_corpus};
use bsom_serve::scheduler::SchedulerConfig;
use bsom_serve::server::{DrainHook, ServeConfig, Server};

struct Args {
    addr: String,
    addr_file: Option<String>,
    checkpoint: Option<String>,
    neurons: usize,
    vector_len: usize,
    labels: usize,
    seed: u64,
    max_batch_signatures: usize,
    max_delay_micros: u64,
    queue_capacity: usize,
    batch_of_one: bool,
}

impl Args {
    fn defaults() -> Args {
        Args {
            addr: "127.0.0.1:0".to_string(),
            addr_file: None,
            checkpoint: None,
            neurons: 40,
            vector_len: 768,
            labels: 4,
            seed: 42,
            max_batch_signatures: 256,
            max_delay_micros: 1000,
            queue_capacity: 1024,
            batch_of_one: false,
        }
    }
}

const USAGE: &str = "usage: bsom-serve [--addr HOST:PORT] [--addr-file PATH] \
[--checkpoint PATH] [--neurons N] [--vector-len BITS] [--labels N] [--seed N] \
[--max-batch SIGS] [--max-delay-micros N] [--queue-capacity N] [--batch-of-one]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::defaults();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--neurons" => args.neurons = parse(&value("--neurons")?)?,
            "--vector-len" => args.vector_len = parse(&value("--vector-len")?)?,
            "--labels" => args.labels = parse(&value("--labels")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--max-batch" => args.max_batch_signatures = parse(&value("--max-batch")?)?,
            "--max-delay-micros" => args.max_delay_micros = parse(&value("--max-delay-micros")?)?,
            "--queue-capacity" => args.queue_capacity = parse(&value("--queue-capacity")?)?,
            "--batch-of-one" => args.batch_of_one = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("cannot parse {raw:?}: {e}"))
}

fn main() -> ExitCode {
    // Fail fast on a bad BSOM_DISPATCH before any map exists.
    let dispatch = match bsom_signature::validate_env_dispatch() {
        Ok(dispatch) => dispatch,
        Err(error) => {
            eprintln!("bsom-serve: {error}");
            return ExitCode::from(2);
        }
    };
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let corpus = synthetic_corpus(args.vector_len, args.labels, 32, 24, args.seed);
    let (service, trainer) = bench_service(args.neurons, args.vector_len, args.seed, &corpus);

    // The trainer runs until the drain hook stops it; the hook then owns
    // the trainer again and may write the checkpoint.
    let stop = Arc::new(AtomicBool::new(false));
    let trainer_stop = Arc::clone(&stop);
    let feed = corpus.clone();
    let trainer_thread = std::thread::spawn(move || {
        let mut trainer = trainer;
        let mut step = 0usize;
        'outer: loop {
            for (signature, label) in &feed {
                if trainer_stop.load(Ordering::Relaxed) {
                    break 'outer;
                }
                let _ = trainer.feed(signature, *label);
                step += 1;
                if step.is_multiple_of(64) {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        trainer
    });
    let checkpoint_path = args.checkpoint.clone();
    let drain_hook: DrainHook = Box::new(move || {
        stop.store(true, Ordering::Relaxed);
        let Ok(trainer) = trainer_thread.join() else {
            eprintln!("bsom-serve: trainer thread panicked; no checkpoint written");
            return false;
        };
        let Some(path) = checkpoint_path else {
            return false;
        };
        match trainer.write_checkpoint(&path) {
            Ok(info) => {
                eprintln!(
                    "bsom-serve: drain checkpoint written to {path} (snapshot v{})",
                    info.version
                );
                true
            }
            Err(error) => {
                eprintln!("bsom-serve: drain checkpoint failed: {error}");
                false
            }
        }
    });

    let scheduler = if args.batch_of_one {
        SchedulerConfig::batch_of_one()
    } else {
        SchedulerConfig {
            max_batch_signatures: args.max_batch_signatures,
            max_delay: Duration::from_micros(args.max_delay_micros),
            queue_capacity: args.queue_capacity,
            ..SchedulerConfig::default()
        }
    };
    let server = match Server::bind(
        service,
        args.addr.as_str(),
        ServeConfig {
            scheduler,
            ..ServeConfig::default()
        },
        Some(drain_hook),
    ) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("bsom-serve: cannot bind {}: {error}", args.addr);
            return ExitCode::from(1);
        }
    };
    let local_addr: SocketAddr = server.local_addr();
    if let Some(path) = &args.addr_file {
        if let Err(error) = std::fs::write(path, local_addr.to_string()) {
            eprintln!("bsom-serve: cannot write --addr-file {path}: {error}");
            return ExitCode::from(1);
        }
    }
    eprintln!(
        "bsom-serve: serving {} neurons x {} bits on {local_addr} (dispatch {dispatch:?}); \
         send a drain frame to stop",
        args.neurons, args.vector_len
    );

    let summary = server.wait_until_drained();
    server.join();
    eprintln!(
        "bsom-serve: drained cleanly — {} requests flushed, checkpoint_written={}, final snapshot v{}",
        summary.requests_flushed, summary.checkpoint_written, summary.final_version
    );
    ExitCode::SUCCESS
}
