//! The load-generation harness behind the `loadgen` binary and the
//! `BENCH_serve.json` figures.
//!
//! Two arrival disciplines:
//!
//! * **Open loop** ([`ArrivalMode::Open`]) — requests arrive on a seeded
//!   Poisson process (exponential inter-arrivals, hand-rolled from a
//!   xorshift64* stream) regardless of how fast the server answers, and
//!   **latency is measured from the scheduled arrival time**, not from the
//!   moment the sender got around to writing the frame. A stalled server
//!   therefore accumulates the stall into every affected sample instead of
//!   silently pausing the clock — the coordinated-omission trap open-loop
//!   testing exists to avoid.
//! * **Closed loop** ([`ArrivalMode::Closed`]) — a fixed number of requests
//!   stay in flight; each response immediately triggers the next request.
//!   This measures *capacity* (the throughput ceiling), not latency under a
//!   given offered load, and the report labels it as such.
//!
//! Request frames are pre-encoded once per connection and replayed, so the
//! generator spends its cycles on the socket, not on serialization.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use bsom_signature::BinaryVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::client::{ClientError, ServeClient};
use crate::wire::{self, WireMessage};

/// How requests are offered to the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// Seeded Poisson arrivals at `rate_rps` requests/second across all
    /// connections, independent of response times.
    Open {
        /// Offered load, requests per second.
        rate_rps: f64,
    },
    /// `in_flight` requests pipelined per connection, each response
    /// triggering the next request.
    Closed {
        /// Outstanding requests per connection.
        in_flight: usize,
    },
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The serve endpoint.
    pub addr: SocketAddr,
    /// Parallel connections.
    pub connections: usize,
    /// Signatures per classify request.
    pub batch_size: usize,
    /// Bits per signature.
    pub vector_len: usize,
    /// Seed for both the signature corpus and the arrival process.
    pub seed: u64,
    /// The arrival discipline.
    pub mode: ArrivalMode,
    /// Measured window (after `warmup`).
    pub duration: Duration,
    /// Ramp time excluded from the latency samples and rate figures.
    pub warmup: Duration,
}

/// Latency percentiles over the measured window, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples the percentiles were computed over.
    pub samples: u64,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_nanos(mut samples: Vec<u64>) -> LatencySummary {
        samples.sort_unstable();
        let pick = |q: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let index = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[index] as f64 / 1e6
        };
        LatencySummary {
            samples: samples.len() as u64,
            p50_ms: pick(0.50),
            p90_ms: pick(0.90),
            p99_ms: pick(0.99),
            p999_ms: pick(0.999),
            max_ms: samples.last().map(|&n| n as f64 / 1e6).unwrap_or(0.0),
        }
    }
}

/// The outcome of one load-generation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// `"open"` or `"closed"`.
    pub mode: String,
    /// Offered rate for open mode (requests/second); 0 for closed.
    pub offered_rps: f64,
    /// Connections used.
    pub connections: usize,
    /// Signatures per request.
    pub batch_size: usize,
    /// Requests sent (including warmup).
    pub sent: u64,
    /// Successful classify responses.
    pub ok: u64,
    /// Typed `Overloaded` responses (shed by admission control).
    pub overloaded: u64,
    /// Error responses, transport failures, or dead connections.
    pub errors: u64,
    /// Wall-clock seconds of the measured window.
    pub elapsed_seconds: f64,
    /// Successful responses per second over the measured window.
    pub requests_per_second: f64,
    /// `requests_per_second * batch_size`.
    pub signatures_per_second: f64,
    /// Latency percentiles (successful responses in the measured window;
    /// open mode measures from the *scheduled* arrival time).
    pub latency: LatencySummary,
}

#[derive(Default)]
struct ConnOutcome {
    sent: u64,
    ok: u64,
    overloaded: u64,
    errors: u64,
    measured_ok: u64,
    samples: Vec<u64>,
}

/// xorshift64* — the same tiny generator the engine's fault plans use; one
/// `u64` seed reproduces the whole arrival schedule.
struct ArrivalRng {
    state: u64,
}

impl ArrivalRng {
    fn seeded(seed: u64) -> Self {
        ArrivalRng { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// An `Exp(rate)` inter-arrival draw: `-ln(1 - U) / rate`.
    fn next_exponential(&mut self, rate_per_second: f64) -> Duration {
        let uniform = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let seconds = -(1.0 - uniform).ln() / rate_per_second;
        Duration::from_secs_f64(seconds.min(10.0))
    }
}

/// Pre-encoded classify frames cycled by one connection.
fn build_frames(config: &LoadgenConfig, connection: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (connection as u64).wrapping_mul(0x9e37));
    (0..16)
        .map(|_| {
            let signatures: Vec<BinaryVector> = (0..config.batch_size)
                .map(|_| BinaryVector::random(config.vector_len, &mut rng))
                .collect();
            wire::encode_classify_request(&signatures)
        })
        .collect()
}

fn classify_outcome(message: Option<WireMessage>, outcome: &mut ConnOutcome) -> bool {
    match message {
        Some(WireMessage::ClassifyResponse { .. }) => {
            outcome.ok += 1;
            true
        }
        Some(WireMessage::OverloadedResponse { .. }) => {
            outcome.overloaded += 1;
            false
        }
        _ => {
            outcome.errors += 1;
            false
        }
    }
}

fn run_open_connection(
    config: &LoadgenConfig,
    connection: usize,
    rate_per_conn: f64,
    start: Instant,
) -> Result<ConnOutcome, ClientError> {
    let frames = build_frames(config, connection);
    let (mut send, mut recv) = ServeClient::connect(config.addr)?.split();
    let mut arrivals = ArrivalRng::seeded(config.seed.wrapping_add(connection as u64 + 1));
    let warmup_end = start + config.warmup;
    let end = warmup_end + config.duration;

    // The sender thread owns the schedule; the receiver matches responses
    // FIFO against the scheduled timestamps.
    let (sched_tx, sched_rx) = mpsc::sync_channel::<Instant>(1 << 16);
    let sender = thread::spawn(move || -> u64 {
        let mut sent = 0u64;
        let mut next = start;
        let mut frame_index = 0usize;
        loop {
            next += arrivals.next_exponential(rate_per_conn);
            if next >= end {
                break;
            }
            let now = Instant::now();
            if next > now {
                thread::sleep(next - now);
            }
            if send.send_frame(&frames[frame_index]).is_err() {
                break;
            }
            frame_index = (frame_index + 1) % frames.len();
            if sched_tx.send(next).is_err() {
                break;
            }
            sent += 1;
        }
        sent
    });

    let mut outcome = ConnOutcome::default();
    while let Ok(scheduled) = sched_rx.recv() {
        let message = match recv.recv() {
            Ok(message) => message,
            Err(_) => {
                outcome.errors += 1;
                break;
            }
        };
        let done = Instant::now();
        if classify_outcome(message, &mut outcome) && scheduled >= warmup_end {
            outcome.measured_ok += 1;
            outcome
                .samples
                .push(done.saturating_duration_since(scheduled).as_nanos() as u64);
        }
    }
    outcome.sent = sender.join().unwrap_or(0);
    Ok(outcome)
}

fn run_closed_connection(
    config: &LoadgenConfig,
    connection: usize,
    in_flight: usize,
    start: Instant,
) -> Result<ConnOutcome, ClientError> {
    let frames = build_frames(config, connection);
    let (mut send, mut recv) = ServeClient::connect(config.addr)?.split();
    let warmup_end = start + config.warmup;
    let end = warmup_end + config.duration;
    let mut outcome = ConnOutcome::default();
    let mut in_flight_times = std::collections::VecDeque::with_capacity(in_flight);
    let mut frame_index = 0usize;
    let send_next = |send: &mut crate::client::SendHalf,
                     times: &mut std::collections::VecDeque<Instant>,
                     frame_index: &mut usize,
                     sent: &mut u64|
     -> bool {
        if send.send_frame(&frames[*frame_index]).is_err() {
            return false;
        }
        *frame_index = (*frame_index + 1) % frames.len();
        times.push_back(Instant::now());
        *sent += 1;
        true
    };
    for _ in 0..in_flight.max(1) {
        if !send_next(
            &mut send,
            &mut in_flight_times,
            &mut frame_index,
            &mut outcome.sent,
        ) {
            break;
        }
    }
    while let Some(sent_at) = in_flight_times.pop_front() {
        let message = match recv.recv() {
            Ok(message) => message,
            Err(_) => {
                outcome.errors += 1;
                break;
            }
        };
        let done = Instant::now();
        if classify_outcome(message, &mut outcome) && sent_at >= warmup_end {
            outcome.measured_ok += 1;
            outcome
                .samples
                .push(done.saturating_duration_since(sent_at).as_nanos() as u64);
        }
        if done < end
            && !send_next(
                &mut send,
                &mut in_flight_times,
                &mut frame_index,
                &mut outcome.sent,
            )
        {
            break;
        }
    }
    Ok(outcome)
}

/// Runs one load-generation pass and aggregates the per-connection results.
///
/// # Errors
///
/// Fails only if a connection cannot be established; failures *during* the
/// run are counted in [`LoadReport::errors`].
pub fn run(config: &LoadgenConfig) -> Result<LoadReport, ClientError> {
    let connections = config.connections.max(1);
    let start = Instant::now();
    let mut workers = Vec::with_capacity(connections);
    for connection in 0..connections {
        let config = config.clone();
        workers.push(thread::spawn(move || match config.mode {
            ArrivalMode::Open { rate_rps } => run_open_connection(
                &config,
                connection,
                (rate_rps / connections as f64).max(1e-6),
                start,
            ),
            ArrivalMode::Closed { in_flight } => {
                run_closed_connection(&config, connection, in_flight, start)
            }
        }));
    }
    let mut merged = ConnOutcome::default();
    let mut connect_error = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok(outcome)) => {
                merged.sent += outcome.sent;
                merged.ok += outcome.ok;
                merged.overloaded += outcome.overloaded;
                merged.errors += outcome.errors;
                merged.measured_ok += outcome.measured_ok;
                merged.samples.extend(outcome.samples);
            }
            Ok(Err(error)) => connect_error = Some(error),
            Err(_) => merged.errors += 1,
        }
    }
    if merged.sent == 0 {
        if let Some(error) = connect_error {
            return Err(error);
        }
    }
    let elapsed = config.duration.as_secs_f64().max(1e-9);
    let (mode, offered_rps) = match config.mode {
        ArrivalMode::Open { rate_rps } => ("open", rate_rps),
        ArrivalMode::Closed { .. } => ("closed", 0.0),
    };
    let requests_per_second = merged.measured_ok as f64 / elapsed;
    Ok(LoadReport {
        mode: mode.to_string(),
        offered_rps,
        connections,
        batch_size: config.batch_size,
        sent: merged.sent,
        ok: merged.ok,
        overloaded: merged.overloaded,
        errors: merged.errors,
        elapsed_seconds: elapsed,
        requests_per_second,
        signatures_per_second: requests_per_second * config.batch_size as f64,
        latency: LatencySummary::from_nanos(merged.samples),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_arrivals_are_seeded_and_positive() {
        let mut a = ArrivalRng::seeded(9);
        let mut b = ArrivalRng::seeded(9);
        let mut total = Duration::ZERO;
        for _ in 0..256 {
            let da = a.next_exponential(1000.0);
            assert_eq!(da, b.next_exponential(1000.0), "same seed, same schedule");
            total += da;
        }
        // Mean of Exp(1000/s) is 1ms; 256 draws should land within a loose
        // band around 256ms.
        assert!(
            total > Duration::from_millis(64),
            "draws collapsed: {total:?}"
        );
        assert!(
            total < Duration::from_millis(1024),
            "draws exploded: {total:?}"
        );
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * 1_000_000).collect();
        let summary = LatencySummary::from_nanos(samples);
        assert_eq!(summary.samples, 1000);
        assert!(summary.p50_ms <= summary.p90_ms);
        assert!(summary.p90_ms <= summary.p99_ms);
        assert!(summary.p99_ms <= summary.p999_ms);
        assert!(summary.p999_ms <= summary.max_ms);
        assert_eq!(summary.max_ms, 1000.0);
    }
}
