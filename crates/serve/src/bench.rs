//! The measured serve figures behind `BENCH_serve.json`.
//!
//! Two workloads, both served over loopback TCP **while a [`Trainer`] on
//! another thread keeps feeding and publishing snapshots** (the train-while-
//! serve contract the engine benches pin in-process):
//!
//! * **Large batches** on a scale-out map (512 neurons x 768 bits, where
//!   the winner search dominates the wire cost): closed-loop throughput over
//!   the socket versus the *same* workload driven in-process through a
//!   `Recognizer` in the same run, on the same machine, with the same
//!   concurrent trainer. The tracked ratio `serve_over_inprocess` is the
//!   whole front-end's overhead budget — frames, checksums, scheduler,
//!   thread hops.
//! * **Small requests** on the paper-default map: single-signature requests
//!   pipelined against (a) a scheduler pinned to batch-of-one dispatch and
//!   (b) the adaptive micro-batching scheduler. The tracked ratio
//!   `speedup_microbatch_over_batch1` is what coalescing buys, and the p99
//!   recorded next to it shows the latency price.
//!
//! Latency percentiles ride along in the report for the open-loop `loadgen`
//! binary and CI to read, but only throughput figures are regression-gated:
//! percentile figures on a shared 1-CPU CI runner are too noisy to gate.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bsom_engine::{EngineConfig, SomService, Trainer};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::loadgen::{self, ArrivalMode, LatencySummary, LoadgenConfig};
use crate::scheduler::SchedulerConfig;
use crate::server::{ServeConfig, Server};

/// Knobs for one serve-bench run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Measured window per leg. Clamped up to 300 ms: shorter windows do
    /// not give the adaptive deadline time to settle, and the figures are
    /// compared against full-run baselines.
    pub min_duration: Duration,
    /// Seed for corpora, arrivals and map initialisation.
    pub seed: u64,
}

/// One measured serving leg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeLeg {
    /// Successful classify responses per second.
    pub requests_per_second: f64,
    /// Signatures per second (`requests_per_second * batch_size`).
    pub signatures_per_second: f64,
    /// Requests shed with a typed `Overloaded` response.
    pub overloaded: u64,
    /// Transport or server errors.
    pub errors: u64,
    /// Latency percentiles of the leg.
    pub latency: LatencySummary,
}

impl ServeLeg {
    fn from_report(report: &loadgen::LoadReport) -> ServeLeg {
        ServeLeg {
            requests_per_second: report.requests_per_second,
            signatures_per_second: report.signatures_per_second,
            overloaded: report.overloaded,
            errors: report.errors,
            latency: report.latency,
        }
    }
}

/// The large-batch comparison against in-process serving.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LargeBatchFigures {
    /// Neurons in the served map.
    pub neurons: usize,
    /// Bits per signature.
    pub vector_len: usize,
    /// Signatures per request.
    pub batch_size: usize,
    /// The same workload driven in-process (signatures/second), same run,
    /// same concurrent trainer.
    pub inprocess_signatures_per_second: f64,
    /// The workload over loopback TCP.
    pub serve: ServeLeg,
    /// `serve.signatures_per_second / inprocess_signatures_per_second` —
    /// the front-end's overhead budget (1.0 = free).
    pub serve_over_inprocess: f64,
}

/// The micro-batching comparison on single-signature requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmallMixFigures {
    /// Neurons in the served map.
    pub neurons: usize,
    /// Bits per signature.
    pub vector_len: usize,
    /// Pipelined single-signature requests per connection.
    pub in_flight_per_connection: usize,
    /// The batch-of-one control leg.
    pub batch1: ServeLeg,
    /// The adaptive micro-batching leg.
    pub microbatch: ServeLeg,
    /// Mean signatures per dispatched batch on the micro-batching leg.
    pub mean_batch_signatures: f64,
    /// `microbatch.requests_per_second / batch1.requests_per_second`.
    pub speedup_microbatch_over_batch1: f64,
}

/// Everything `BENCH_serve.json` tracks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// The large-batch comparison.
    pub large: LargeBatchFigures,
    /// The small-request comparison.
    pub small: SmallMixFigures,
    /// Snapshot versions the concurrent trainer published across the legs —
    /// proof the service was actually training while being measured.
    pub trainer_published_versions: u64,
}

/// A synthetic labelled corpus: one random prototype per label, examples a
/// few bit-flips away — the same shape the engine benches train on, without
/// pulling the dataset crate into the serving stack.
pub fn synthetic_corpus(
    vector_len: usize,
    labels: usize,
    per_label: usize,
    flip_bits: usize,
    seed: u64,
) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes: Vec<BinaryVector> = (0..labels)
        .map(|_| BinaryVector::random(vector_len, &mut rng))
        .collect();
    let mut corpus = Vec::with_capacity(labels * per_label);
    for (index, prototype) in prototypes.iter().enumerate() {
        for _ in 0..per_label {
            let mut example = prototype.clone();
            for _ in 0..flip_bits {
                let bit = rng.gen_range(0..vector_len);
                example.set(bit, !example.bit(bit));
            }
            corpus.push((example, ObjectLabel::new(index)));
        }
    }
    corpus
}

/// A train-while-serve service over a fresh map, with its trainer.
pub fn bench_service(
    neurons: usize,
    vector_len: usize,
    seed: u64,
    corpus: &[(BinaryVector, ObjectLabel)],
) -> (Arc<SomService>, Trainer) {
    let som = BSom::new(
        BSomConfig::new(neurons, vector_len),
        &mut StdRng::seed_from_u64(seed),
    );
    let (service, trainer) = SomService::train_while_serve(
        som,
        TrainSchedule::new(usize::MAX),
        corpus,
        EngineConfig::default().with_publish_every_steps(64),
    );
    (Arc::new(service), trainer)
}

/// Runs `trainer` on its own thread until the returned stop flag is set.
/// The loop throttles itself (a short sleep every 32 steps) so that on a
/// single-CPU host training contends with serving without starving it —
/// the published-version counter in the report proves it kept running.
fn spawn_trainer(
    mut trainer: Trainer,
    corpus: Vec<(BinaryVector, ObjectLabel)>,
) -> (Arc<AtomicBool>, thread::JoinHandle<Trainer>) {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = thread::spawn(move || {
        let mut step = 0usize;
        'outer: loop {
            for (signature, label) in &corpus {
                if flag.load(Ordering::Relaxed) {
                    break 'outer;
                }
                // A wrong-length or poisoned feed would flatline the
                // published-version figure; ignore the per-step result.
                let _ = trainer.feed(signature, *label);
                step += 1;
                if step.is_multiple_of(32) {
                    thread::sleep(Duration::from_micros(100));
                }
            }
        }
        trainer
    });
    (stop, handle)
}

fn closed_loadgen(
    addr: SocketAddr,
    connections: usize,
    in_flight: usize,
    batch_size: usize,
    vector_len: usize,
    seed: u64,
    duration: Duration,
) -> loadgen::LoadReport {
    let config = LoadgenConfig {
        addr,
        connections,
        batch_size,
        vector_len,
        seed,
        mode: ArrivalMode::Closed { in_flight },
        duration,
        warmup: Duration::from_millis(100),
    };
    loadgen::run(&config)
        .unwrap_or_else(|error| panic!("loadgen against the bench server failed: {error}"))
}

/// Measures the full serve benchmark. Spawns real servers on loopback
/// (`127.0.0.1:0`) and real load generators; takes a few seconds.
pub fn measure_serve(config: &ServeBenchConfig) -> ServeBenchReport {
    let window = config.min_duration.max(Duration::from_millis(300));
    let seed = config.seed;

    // --- Large batches on the scale-out map -----------------------------
    let (neurons, vector_len, batch_size) = (512, 768, 150);
    let corpus = synthetic_corpus(vector_len, 8, 32, 24, seed);
    let (service, trainer) = bench_service(neurons, vector_len, seed, &corpus);
    let version_before = service.version();
    let (stop, trainer_thread) = spawn_trainer(trainer, corpus.clone());

    // In-process leg: the same batch shape through a Recognizer.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11C);
    let probes: Vec<BinaryVector> = (0..batch_size)
        .map(|_| BinaryVector::random(vector_len, &mut rng))
        .collect();
    let mut recognizer = service.recognizer();
    let warmup_end = std::time::Instant::now() + Duration::from_millis(100);
    while std::time::Instant::now() < warmup_end {
        let _ = recognizer.classify_batch(&probes[..]);
    }
    let start = std::time::Instant::now();
    let mut inprocess_signatures = 0u64;
    while start.elapsed() < window {
        let predictions = recognizer.classify_batch(&probes[..]);
        inprocess_signatures += predictions.len() as u64;
    }
    let inprocess_signatures_per_second =
        inprocess_signatures as f64 / start.elapsed().as_secs_f64();

    // Serve leg: same shape over loopback.
    let server = Server::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServeConfig::default(),
        None,
    )
    .expect("binding the bench server on loopback");
    let report = closed_loadgen(
        server.local_addr(),
        2,
        4,
        batch_size,
        vector_len,
        seed,
        window,
    );
    let serve = ServeLeg::from_report(&report);
    server.drain();
    server.join();
    stop.store(true, Ordering::Relaxed);
    let _ = trainer_thread.join();
    let large_published = service.version() - version_before;
    let large = LargeBatchFigures {
        neurons,
        vector_len,
        batch_size,
        inprocess_signatures_per_second,
        serve_over_inprocess: serve.signatures_per_second
            / inprocess_signatures_per_second.max(1e-9),
        serve,
    };

    // --- Single-signature requests on the paper-default map --------------
    let (neurons, vector_len) = (40, 768);
    let in_flight = 16;
    let connections = 4;
    let corpus = synthetic_corpus(vector_len, 4, 32, 24, seed ^ 0x5E);
    let (service, trainer) = bench_service(neurons, vector_len, seed ^ 0x5E, &corpus);
    let version_before = service.version();
    let (stop, trainer_thread) = spawn_trainer(trainer, corpus);

    // Control: dispatch every request alone.
    let batch1_server = Server::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServeConfig {
            scheduler: SchedulerConfig::batch_of_one(),
            ..ServeConfig::default()
        },
        None,
    )
    .expect("binding the batch-of-one server");
    let report = closed_loadgen(
        batch1_server.local_addr(),
        connections,
        in_flight,
        1,
        vector_len,
        seed ^ 0xB1,
        window,
    );
    let batch1 = ServeLeg::from_report(&report);
    batch1_server.drain();
    batch1_server.join();

    // Adaptive micro-batching, same offered pressure.
    let micro_server = Server::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServeConfig::default(),
        None,
    )
    .expect("binding the micro-batching server");
    let report = closed_loadgen(
        micro_server.local_addr(),
        connections,
        in_flight,
        1,
        vector_len,
        seed ^ 0xB2,
        window,
    );
    let microbatch = ServeLeg::from_report(&report);
    let scheduler = micro_server.scheduler_snapshot();
    micro_server.drain();
    micro_server.join();
    stop.store(true, Ordering::Relaxed);
    let _ = trainer_thread.join();
    let small_published = service.version() - version_before;

    let mean_batch_signatures =
        scheduler.signatures_dispatched as f64 / (scheduler.batches_dispatched.max(1)) as f64;
    let small = SmallMixFigures {
        neurons,
        vector_len,
        in_flight_per_connection: in_flight,
        speedup_microbatch_over_batch1: microbatch.requests_per_second
            / batch1.requests_per_second.max(1e-9),
        batch1,
        microbatch,
        mean_batch_signatures,
    };

    ServeBenchReport {
        large,
        small,
        trainer_published_versions: large_published + small_published,
    }
}
