//! End-to-end tenant serving: a [`Server::bind_registry`] front-end over a
//! real TCP socket, driven through format-2 frames (tenant-addressed
//! classify / train / drain) *and* through a format-1 pre-tenant client —
//! proving the wire-format-2 rollout is invisible to old clients.
//!
//! The load-bearing differential: examples fed **over the wire** to a
//! tenant must leave its map bit-identical to a standalone in-process
//! [`SomService`] trained on the same examples.

use bsom_engine::{EngineConfig, MapRegistry, RegistryConfig, SomService, TenantId, Trainer};
use bsom_serve::wire::ErrorCode;
use bsom_serve::{ClientError, ServeClient, ServeConfig, Server};
use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const NEURONS: usize = 10;
const VECTOR_LEN: usize = 128;
const LABELS: usize = 3;
const TENANTS: usize = 3;

fn make_som(seed: u64) -> BSom {
    BSom::new(
        BSomConfig::new(NEURONS, VECTOR_LEN),
        &mut StdRng::seed_from_u64(seed),
    )
}

fn seed_data(seed: u64, count: usize) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            (
                BinaryVector::random(VECTOR_LEN, &mut rng),
                ObjectLabel::new(i % LABELS),
            )
        })
        .collect()
}

fn probes(seed: u64, count: usize) -> Vec<BinaryVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| BinaryVector::random(VECTOR_LEN, &mut rng))
        .collect()
}

/// Wire-shaped training examples (labels as raw `u64`s, the way
/// `TrainRequest` carries them).
fn wire_examples(seed: u64, count: usize) -> Vec<(BinaryVector, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                BinaryVector::random(VECTOR_LEN, &mut rng),
                rng.gen_range(0..LABELS) as u64,
            )
        })
        .collect()
}

/// A registry of `TENANTS` tenants (`tenant-0` is the default) behind a
/// loopback server. Tenant `t` is seeded from map seed `t`.
fn registry_server() -> (Server, Arc<MapRegistry>) {
    let registry = Arc::new(MapRegistry::new(RegistryConfig::new(
        EngineConfig::with_workers(2),
    )));
    let corpus = seed_data(0x5EED, 6);
    for t in 0..TENANTS {
        registry
            .create_tenant(
                format!("tenant-{t}"),
                make_som(t as u64),
                TrainSchedule::new(usize::MAX),
                &corpus,
            )
            .unwrap();
    }
    let server = Server::bind_registry(
        Arc::clone(&registry),
        "tenant-0",
        "127.0.0.1:0",
        ServeConfig::default(),
        None,
    )
    .expect("bind loopback");
    (server, registry)
}

#[test]
fn tenant_addressed_classify_matches_in_process_bit_for_bit() {
    let (server, registry) = registry_server();
    let signatures = probes(41, 12);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    for t in 0..TENANTS {
        let id = format!("tenant-{t}");
        let direct = registry.classify(id.as_str(), &signatures).unwrap();
        let over_wire = client
            .classify_tenant(Some(&id), &signatures)
            .expect("tenant classify over the wire");
        assert_eq!(over_wire, direct, "tenant {id} diverged over the wire");
    }
    // The maps differ, so addressing must matter: at least one pair of
    // tenants answers differently for the same probes.
    let answers: Vec<_> = (0..TENANTS)
        .map(|t| {
            registry
                .classify(format!("tenant-{t}"), &signatures)
                .unwrap()
        })
        .collect();
    assert!(
        answers.windows(2).any(|w| w[0] != w[1]),
        "distinct tenants should not all answer identically"
    );
    server.join();
}

/// The backward-compatibility proof: a client that only speaks format 1
/// (no tenant field anywhere) gets routed to the default tenant and sees a
/// fully working server — classify, health and drain.
#[test]
fn format_1_client_works_against_a_registry_server() {
    let (server, registry) = registry_server();
    let signatures = probes(43, 8);
    let default_direct = registry.classify("tenant-0", &signatures).unwrap();

    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    // `classify` with no tenant emits byte-for-byte the pre-tenant format-1
    // frame (proven in wire.rs tests); here it must route to tenant-0.
    let over_wire = client.classify(&signatures).expect("format-1 classify");
    assert_eq!(over_wire, default_direct);

    let health = client.health().expect("format-1 health");
    assert!(!health.draining);
    assert_eq!(
        health.snapshot_version,
        registry.version("tenant-0").unwrap()
    );
    assert_eq!(health.workers_alive, health.workers_configured);

    let summary = client.drain().expect("format-1 drain");
    assert!(!summary.checkpoint_written);
    assert_eq!(summary.final_version, registry.version("tenant-0").unwrap());
    server.join();
}

/// The wire-to-weights differential: examples trained through
/// `TrainRequest` + `DrainRequest{tenant}` leave the tenant's map
/// bit-identical to a standalone service fed the same examples in process.
#[test]
fn training_over_the_wire_is_bit_identical_to_in_process_training() {
    let (server, registry) = registry_server();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let examples = wire_examples(47, 20);

    let accepted = client
        .train(Some("tenant-1"), &examples)
        .expect("train over the wire");
    assert_eq!(accepted, examples.len() as u64);
    // Feeds queue; the tenant-scoped drain flushes them into steps.
    let summary = client.drain_tenant("tenant-1").expect("tenant drain");
    assert_eq!(summary.requests_flushed, examples.len() as u64);
    assert!(
        !summary.checkpoint_written,
        "tenant drain writes no checkpoint"
    );

    // Reference: same map seed, same seed corpus, same examples, in process.
    let (reference_service, mut reference_trainer): (SomService, Trainer) =
        SomService::train_while_serve(
            make_som(1),
            TrainSchedule::new(usize::MAX),
            &seed_data(0x5EED, 6),
            EngineConfig::with_workers(2),
        );
    for (signature, label) in &examples {
        reference_trainer
            .feed(signature, ObjectLabel::new(*label as usize))
            .unwrap();
    }
    reference_trainer.publish();

    assert_eq!(
        &registry.tenant_som("tenant-1").unwrap(),
        reference_trainer.som(),
        "wire-trained map diverged from in-process training"
    );
    assert_eq!(summary.final_version, reference_service.version());
    assert_eq!(
        registry.version("tenant-1").unwrap(),
        reference_service.version()
    );

    // And the freshly trained weights serve over the wire immediately.
    let signatures = probes(53, 6);
    let over_wire = client
        .classify_tenant(Some("tenant-1"), &signatures)
        .expect("post-train classify");
    let direct = reference_service.classify_pinned(&reference_service.snapshot(), &signatures);
    assert_eq!(over_wire, direct);

    // An untouched sibling was not perturbed by any of this.
    assert_eq!(registry.version("tenant-2").unwrap(), 1);
    server.join();
}

#[test]
fn unknown_tenants_and_misdirected_requests_are_rejected_typed() {
    let (server, _registry) = registry_server();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    match client.classify_tenant(Some("no-such-tenant"), &probes(59, 1)) {
        Err(ClientError::Rejected { code, message }) => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("no-such-tenant"), "{message}");
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    match client.train(Some("no-such-tenant"), &wire_examples(61, 2)) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    match client.drain_tenant("no-such-tenant") {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    // The connection survives every rejection.
    let predictions = client
        .classify_tenant(Some("tenant-2"), &probes(67, 2))
        .expect("rejections must not wedge the connection");
    assert_eq!(predictions.len(), 2);
    server.join();
}

/// A global (tenant-less) drain flushes **every** tenant's queued work and
/// shuts the server down; further training is refused typed.
#[test]
fn global_drain_flushes_every_tenant_and_stops_training() {
    let (server, registry) = registry_server();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let first = wire_examples(71, 5);
    let second = wire_examples(73, 7);
    client
        .train(Some("tenant-0"), &first)
        .expect("train tenant-0");
    client
        .train(Some("tenant-2"), &second)
        .expect("train tenant-2");

    let summary = client.drain().expect("global drain");
    assert_eq!(
        summary.requests_flushed,
        (first.len() + second.len()) as u64
    );
    assert_eq!(
        registry.stats().pending_steps,
        0,
        "a tenant kept its backlog"
    );
    assert_eq!(registry.version("tenant-0").unwrap(), 2);
    assert_eq!(registry.version("tenant-2").unwrap(), 2);

    match client.train(Some("tenant-0"), &wire_examples(79, 1)) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Draining),
        other => panic!("post-drain training must be refused, got {other:?}"),
    }
    server.join();
}

/// `TenantId` round-trips through the wire by its string rendering; `u64`
/// tenant ids created in process are addressable as their decimal strings.
#[test]
fn numeric_tenant_ids_are_addressable_by_decimal_string() {
    let registry = Arc::new(MapRegistry::new(RegistryConfig::new(
        EngineConfig::with_workers(1),
    )));
    registry
        .create_tenant(42u64, make_som(9), TrainSchedule::new(usize::MAX), &[])
        .unwrap();
    let server = Server::bind_registry(
        Arc::clone(&registry),
        TenantId::from(42u64),
        "127.0.0.1:0",
        ServeConfig::default(),
        None,
    )
    .expect("bind loopback");

    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let signatures = probes(83, 3);
    let by_name = client
        .classify_tenant(Some("42"), &signatures)
        .expect("decimal-addressed classify");
    let by_default = client
        .classify(&signatures)
        .expect("default-tenant classify");
    assert_eq!(by_name, by_default);
    server.join();
}
