//! Fault injection against the serving front-end (requires `--features
//! fault-injection`).
//!
//! The contract under test is the drain promise from DESIGN.md: once a
//! request is **accepted**, a graceful drain delivers its complete,
//! bit-identical response — even when an engine worker panics in the middle
//! of the drain's in-flight flush, and even though the supervisor is
//! respawning the worker while the flush runs.
//!
//! The failpoint registry is process-global, so every test takes
//! [`harness`] — the same serialize-and-reset idiom as `bsom-engine`'s
//! `fault_injection` suite. CI runs this binary with `--test-threads=1`.

#![cfg(feature = "fault-injection")]

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use bsom_engine::faultpoint::{arm_panic, arm_sleep, hit_count, reset};
use bsom_serve::bench::{bench_service, synthetic_corpus};
use bsom_serve::wire::WireMessage;
use bsom_serve::{SchedulerConfig, ServeClient, ServeConfig, Server};
use bsom_som::Prediction;

const VECTOR_LEN: usize = 256;

/// Serializes the suite around the process-global failpoint registry and
/// guarantees a clean registry on both entry and exit (even when the test
/// body panics: the reset runs in `Drop`).
fn harness() -> HarnessGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    HarnessGuard { _guard: guard }
}

struct HarnessGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for HarnessGuard {
    fn drop(&mut self) {
        reset();
    }
}

#[test]
fn worker_panic_mid_drain_still_flushes_accepted_requests_bit_identically() {
    let _harness = harness();
    let corpus = synthetic_corpus(VECTOR_LEN, 4, 16, 12, 7);
    let (service, _trainer) = bench_service(24, VECTOR_LEN, 7, &corpus);
    let snapshot = service.snapshot();
    let expected: Vec<Prediction> = corpus
        .iter()
        .map(|(v, _)| service.classify_pinned(&snapshot, std::slice::from_ref(v))[0])
        .collect();

    // A long deadline parks every pipelined request in the scheduler's
    // collection window, so the drain's flush — not normal dispatch — is
    // what answers them.
    let server = Server::bind(
        service,
        "127.0.0.1:0",
        ServeConfig {
            scheduler: SchedulerConfig {
                initial_delay: Duration::from_secs(5),
                max_delay: Duration::from_secs(5),
                ..SchedulerConfig::default()
            },
            ..ServeConfig::default()
        },
        None,
    )
    .expect("bind loopback");

    let (mut send, mut recv) = ServeClient::connect(server.local_addr())
        .expect("connect")
        .split();
    for (signature, _) in &corpus {
        send.send_classify(std::slice::from_ref(signature))
            .expect("pipelined send");
    }
    // Let the reader thread admit everything into the scheduler before the
    // drain flips the accepting flag (`pending` empties as jobs move into
    // the collection window; `submitted` counts admissions).
    while (server.scheduler_snapshot().submitted as usize) < corpus.len() {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Arm the engine worker to panic on its very next job: with every
    // request parked behind the 5s deadline, that next job IS the drain's
    // in-flight flush — the panic lands mid-drain.
    arm_panic("worker.job", hit_count("worker.job"));
    let summary = server.drain();
    assert_eq!(
        hit_count("service.drain"),
        1,
        "the drain window failpoint marks exactly one drain"
    );
    assert_eq!(summary.requests_flushed as usize, corpus.len());

    // Every accepted request gets its full response, bit-identical to the
    // pinned in-process answers — the worker panic was contained.
    let mut answers = Vec::new();
    for _ in 0..corpus.len() {
        match recv.recv().expect("response").expect("not EOF") {
            WireMessage::ClassifyResponse { predictions } => {
                assert_eq!(predictions.len(), 1);
                answers.push(predictions[0]);
            }
            other => panic!("expected classify response, got {other:?}"),
        }
    }
    assert_eq!(answers, expected);

    // The supervisor records the panic and respawns the worker on its own
    // thread; give it a bounded moment to notice.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let health = loop {
        let health = server.health();
        if (health.worker_panics == 1 && health.worker_respawns == 1)
            || std::time::Instant::now() >= deadline
        {
            break health;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(health.worker_panics, 1, "the injected panic is on record");
    assert_eq!(health.worker_respawns, 1);
    assert_eq!(health.workers_alive, health.workers_configured);
    assert!(health.draining);
    server.join();
}

#[test]
fn engine_saturation_surfaces_as_wire_overload_then_recovers() {
    let _harness = harness();
    let corpus = synthetic_corpus(VECTOR_LEN, 4, 16, 12, 7);
    let (service, _trainer) = bench_service(24, VECTOR_LEN, 7, &corpus);
    // Batch-of-one keeps the scheduler transparent: each request becomes
    // one engine job, so parking the engine worker via the worker.job
    // failpoint saturates the *engine's* bounded queue and the typed
    // Overloaded shed must travel all the way back out over the wire.
    let server = Server::bind(
        service,
        "127.0.0.1:0",
        ServeConfig {
            scheduler: SchedulerConfig {
                queue_capacity: 8,
                ..SchedulerConfig::batch_of_one()
            },
            ..ServeConfig::default()
        },
        None,
    )
    .expect("bind loopback");

    let base = hit_count("worker.job");
    arm_sleep("worker.job", base, Duration::from_millis(400));
    let (mut send, mut recv) = ServeClient::connect(server.local_addr())
        .expect("connect")
        .split();
    let burst = 64usize;
    for (signature, _) in corpus.iter().cycle().take(burst) {
        send.send_classify(std::slice::from_ref(signature))
            .expect("burst send");
    }
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for _ in 0..burst {
        match recv.recv().expect("response").expect("not EOF") {
            WireMessage::ClassifyResponse { .. } => ok += 1,
            WireMessage::OverloadedResponse { queue_capacity, .. } => {
                assert!(queue_capacity > 0);
                overloaded += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(ok + overloaded, burst);
    assert!(
        overloaded > 0,
        "a parked worker behind a 64-request burst must shed something"
    );

    // Load subsided and the sleep expired: the service answers again.
    let mut client = ServeClient::connect(server.local_addr()).expect("reconnect");
    let recovered = client
        .classify(std::slice::from_ref(&corpus[0].0))
        .expect("post-overload classify succeeds");
    assert_eq!(recovered.len(), 1);
    assert_eq!(hit_count("service.drain"), 0);
    server.join();
}
