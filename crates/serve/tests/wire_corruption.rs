//! Adversarial decoding: every corruption of a wire frame must come back as
//! a typed [`WireError`], never a panic and never a silently-wrong message.
//!
//! The suite mirrors `bsom-engine`'s `checkpoint_corruption` tests: a
//! pristine-frame anchor first (so the corruption tests cannot pass
//! vacuously against a decoder that rejects everything), then exhaustive
//! single-bit flips and truncations, then proptest-driven trailing garbage
//! and byte soup.

use std::io::Cursor;

use bsom_serve::wire::{
    self, checksum, decode_message, decode_message_exact, decode_message_with_max_format,
    encode_message, read_message, WireError, WireMessage, MAX_WIRE_PAYLOAD, WIRE_CHECKSUM_LEN,
    WIRE_FORMAT, WIRE_FORMAT_TENANT, WIRE_HEADER_LEN,
};
use bsom_signature::BinaryVector;
use proptest::prelude::*;

/// A small classify request with a partial tail word: exercises the count,
/// vector-length, packing, and tail-mask validation paths all at once.
fn pristine_frame() -> Vec<u8> {
    let mut a = BinaryVector::zeros(100);
    let mut b = BinaryVector::zeros(100);
    for i in (0..100).step_by(3) {
        a.set(i, true);
    }
    for i in (0..100).step_by(7) {
        b.set(i, true);
    }
    wire::encode_classify_request(&[a, b])
}

/// The format-2 siblings: a tenant-addressed classify and a train request.
/// Together they cover every format-2-only decode path (tenant prefix,
/// train payload).
fn pristine_tenant_frames() -> Vec<Vec<u8>> {
    let mut a = BinaryVector::zeros(100);
    for i in (0..100).step_by(5) {
        a.set(i, true);
    }
    let classify = wire::encode_classify_request_for(Some("tenant-α"), &[a.clone()]);
    let train = encode_message(&WireMessage::TrainRequest {
        tenant: Some("tenant-α".to_string()),
        examples: vec![(a, 3)],
    });
    vec![classify, train]
}

#[test]
fn the_pristine_frame_decodes() {
    let frame = pristine_frame();
    let message = decode_message_exact(&frame).expect("pristine frame must decode");
    let WireMessage::ClassifyRequest { tenant, signatures } = &message else {
        panic!("expected a classify request, got {message:?}");
    };
    assert_eq!(tenant, &None);
    assert_eq!(signatures.len(), 2);
    assert_eq!(signatures[0].len(), 100);
    assert!(signatures[0].bit(99));
    // The stream reader agrees with the exact decoder.
    let mut cursor = Cursor::new(frame.clone());
    let streamed = read_message(&mut cursor)
        .expect("stream decode must succeed")
        .expect("a full frame is not EOF");
    assert_eq!(streamed, message);
}

#[test]
fn the_pristine_tenant_frames_decode() {
    let frames = pristine_tenant_frames();
    let classify = decode_message_exact(&frames[0]).expect("tenant classify must decode");
    let WireMessage::ClassifyRequest { tenant, signatures } = &classify else {
        panic!("expected a classify request, got {classify:?}");
    };
    assert_eq!(tenant.as_deref(), Some("tenant-α"));
    assert_eq!(signatures.len(), 1);
    let train = decode_message_exact(&frames[1]).expect("train request must decode");
    let WireMessage::TrainRequest { tenant, examples } = &train else {
        panic!("expected a train request, got {train:?}");
    };
    assert_eq!(tenant.as_deref(), Some("tenant-α"));
    assert_eq!(examples.len(), 1);
    assert_eq!(examples[0].1, 3);
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let frame = pristine_frame();
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut corrupted = frame.clone();
            corrupted[byte] ^= 1 << bit;
            let err = decode_message_exact(&corrupted)
                .expect_err(&format!("flip of byte {byte} bit {bit} must not decode"));
            // Spot-check the typed-ness of a few structurally distinct zones.
            if byte < 8 {
                assert!(
                    matches!(err, WireError::BadMagic { .. }),
                    "byte {byte}: {err}"
                );
            } else if byte >= frame.len() - WIRE_CHECKSUM_LEN {
                assert!(
                    matches!(err, WireError::ChecksumMismatch { .. }),
                    "byte {byte}: {err}"
                );
            }
            // The stream reader must also reject it without panicking.
            let mut cursor = Cursor::new(corrupted);
            assert!(read_message(&mut cursor).is_err(), "byte {byte} bit {bit}");
        }
    }
}

#[test]
fn every_single_bit_flip_of_a_format_2_frame_is_rejected() {
    for frame in pristine_tenant_frames() {
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupted = frame.clone();
                corrupted[byte] ^= 1 << bit;
                let err = decode_message_exact(&corrupted)
                    .expect_err(&format!("flip of byte {byte} bit {bit} must not decode"));
                if byte < 8 {
                    assert!(
                        matches!(err, WireError::BadMagic { .. }),
                        "byte {byte}: {err}"
                    );
                } else if (8..12).contains(&byte) {
                    // No single flip of the format field 2 can reach the
                    // other valid format 1 (they differ in two bits), so
                    // every flip is an unsupported format — caught before
                    // the checksum is even computed.
                    assert!(
                        matches!(err, WireError::UnsupportedFormat { .. }),
                        "byte {byte}: {err}"
                    );
                } else if byte >= frame.len() - WIRE_CHECKSUM_LEN {
                    assert!(
                        matches!(err, WireError::ChecksumMismatch { .. }),
                        "byte {byte}: {err}"
                    );
                }
                let mut cursor = Cursor::new(corrupted);
                assert!(read_message(&mut cursor).is_err(), "byte {byte} bit {bit}");
            }
        }
    }
}

#[test]
fn truncation_at_every_offset_of_a_format_2_frame_is_rejected() {
    for frame in pristine_tenant_frames() {
        for len in 1..frame.len() {
            let err = decode_message_exact(&frame[..len])
                .expect_err(&format!("truncation to {len} bytes must not decode"));
            assert!(
                matches!(
                    err,
                    WireError::TooShort { .. } | WireError::Truncated { .. }
                ),
                "len {len}: {err}"
            );
        }
    }
}

/// The cross-decode compatibility matrix the module docs promise:
///
/// |                      | format-1 frame           | format-2 frame        |
/// |----------------------|--------------------------|-----------------------|
/// | pre-tenant decoder   | decodes                  | `UnsupportedFormat`   |
/// | this decoder         | decodes, default tenant  | decodes, tenant id    |
#[test]
fn format_cross_decode_matrix() {
    let v1 = pristine_frame();
    let v2 = &pristine_tenant_frames()[0];

    // Old decoder × old frame: decodes, no tenant.
    let (message, _) =
        decode_message_with_max_format(&v1, WIRE_FORMAT).expect("v1 frame on a v1 decoder");
    assert!(matches!(
        message,
        WireMessage::ClassifyRequest { tenant: None, .. }
    ));

    // Old decoder × new frame: typed rejection, never a misread.
    let err = decode_message_with_max_format(v2, WIRE_FORMAT)
        .expect_err("a pre-tenant decoder must reject format 2");
    assert!(
        matches!(err, WireError::UnsupportedFormat { found: 2 }),
        "{err}"
    );

    // New decoder × old frame: decodes, routed to the default tenant.
    let (message, _) =
        decode_message_with_max_format(&v1, WIRE_FORMAT_TENANT).expect("v1 frame on a v2 decoder");
    assert!(matches!(
        message,
        WireMessage::ClassifyRequest { tenant: None, .. }
    ));

    // New decoder × new frame: decodes with the tenant id intact.
    let (message, _) =
        decode_message_with_max_format(v2, WIRE_FORMAT_TENANT).expect("v2 frame on a v2 decoder");
    let WireMessage::ClassifyRequest { tenant, .. } = message else {
        panic!("expected a classify request");
    };
    assert_eq!(tenant.as_deref(), Some("tenant-α"));
}

#[test]
fn truncation_at_every_offset_is_rejected() {
    let frame = pristine_frame();
    for len in 1..frame.len() {
        let truncated = &frame[..len];
        let err = decode_message_exact(truncated)
            .expect_err(&format!("truncation to {len} bytes must not decode"));
        assert!(
            matches!(
                err,
                WireError::TooShort { .. } | WireError::Truncated { .. }
            ),
            "len {len}: {err}"
        );
        // Mid-frame EOF on a stream is Truncated, not a clean end.
        let mut cursor = Cursor::new(truncated.to_vec());
        let err = read_message(&mut cursor).expect_err("mid-frame EOF must error");
        assert!(
            matches!(err, WireError::Truncated { .. }),
            "len {len}: {err}"
        );
    }
    // Zero bytes IS a clean end of stream — the one non-error truncation.
    let mut empty = Cursor::new(Vec::new());
    assert!(matches!(read_message(&mut empty), Ok(None)));
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    let mut frame = pristine_frame();
    // Overwrite the payload-length field (bytes 13..21) with a declared
    // size just past the cap; reseal the checksum so only the bound fires.
    let huge = MAX_WIRE_PAYLOAD + 1;
    frame[13..21].copy_from_slice(&huge.to_le_bytes());
    let body_len = frame.len() - WIRE_CHECKSUM_LEN;
    let sum = checksum(&frame[..body_len]);
    frame[body_len..].copy_from_slice(&sum.to_le_bytes());
    let err = decode_message_exact(&frame).expect_err("oversized must not decode");
    assert!(matches!(err, WireError::Oversized { .. }), "{err}");
    // The stream path must refuse before trying to read (or buffer) 16 MiB+.
    let mut cursor = Cursor::new(frame[..WIRE_HEADER_LEN].to_vec());
    let err = read_message(&mut cursor).expect_err("oversized stream must error");
    assert!(matches!(err, WireError::Oversized { .. }), "{err}");
}

#[test]
fn a_request_declaring_too_many_signatures_is_rejected() {
    // A header-valid, checksum-valid frame whose *payload* lies: count is
    // over the per-request cap. Must be Malformed, not a huge allocation.
    let mut payload = Vec::new();
    payload.extend_from_slice(&(wire::MAX_REQUEST_SIGNATURES + 1).to_le_bytes());
    payload.extend_from_slice(&64u32.to_le_bytes());
    let mut frame = Vec::new();
    frame.extend_from_slice(&wire::WIRE_MAGIC);
    frame.extend_from_slice(&wire::WIRE_FORMAT.to_le_bytes());
    frame.push(0x01);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    let sum = checksum(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    let err = decode_message_exact(&frame).expect_err("absurd count must not decode");
    assert!(matches!(err, WireError::Malformed { .. }), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trailing_garbage_is_rejected_by_exact_decode(
        extra in prop::collection::vec(any::<u8>(), 1..64)
    ) {
        let mut frame = pristine_frame();
        let frame_len = frame.len();
        frame.extend_from_slice(&extra);
        let err = decode_message_exact(&frame).expect_err("trailing bytes must fail exact decode");
        prop_assert!(matches!(err, WireError::TrailingBytes { .. }), "{err}");
        // The incremental decoder, by contrast, consumes exactly one frame
        // and reports where the next one starts — that is how the
        // connection reader separates pipelined requests.
        let (message, consumed) = decode_message(&frame).expect("stream decode takes one frame");
        prop_assert_eq!(consumed, frame_len);
        prop_assert!(matches!(message, WireMessage::ClassifyRequest { .. }));
    }

    #[test]
    fn byte_soup_is_rejected(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert!(decode_message_exact(&bytes).is_err());
    }

    #[test]
    fn byte_soup_after_a_valid_frame_does_not_corrupt_it(
        bytes in prop::collection::vec(any::<u8>(), 1..128)
    ) {
        // A well-formed frame followed by soup: the first decode succeeds
        // bit-for-bit, the remainder is rejected.
        let frame = pristine_frame();
        let mut stream = frame.clone();
        stream.extend_from_slice(&bytes);
        let (message, consumed) = decode_message(&stream).expect("first frame decodes");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(encode_message(&message), frame);
        prop_assert!(decode_message(&stream[consumed..]).is_err());
    }

    #[test]
    fn every_message_kind_survives_reencode_after_soup_rejection(
        seed in any::<u64>()
    ) {
        // Round-trip stability is the anchor the corruption assertions hang
        // off: encode → decode → encode is byte-identical for a seeded
        // request of arbitrary (bounded) shape.
        let len = 1 + (seed % 300) as usize;
        let count = 1 + (seed % 5) as usize;
        let mut signatures = Vec::new();
        for c in 0..count {
            let mut v = BinaryVector::zeros(len);
            let mut state = seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            for i in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v.set(i, state & 1 == 1);
            }
            signatures.push(v);
        }
        let frame = wire::encode_classify_request(&signatures);
        let decoded = decode_message_exact(&frame).expect("round-trip");
        prop_assert_eq!(encode_message(&decoded), frame);
    }
}
