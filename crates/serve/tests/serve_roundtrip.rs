//! End-to-end behaviour of the serving front-end: wire answers are
//! bit-identical to in-process answers, pipelined small requests coalesce
//! into single engine batches, overload is a typed response (and the
//! service recovers), and drain/health behave as documented.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use bsom_engine::EngineError;
use bsom_serve::bench::{bench_service, synthetic_corpus};
use bsom_serve::scheduler::{BatchClassify, ClassifyJob, MicroBatcher};
use bsom_serve::wire::{self, ErrorCode, WireMessage};
use bsom_serve::{BatchReply, SchedulerConfig, ServeClient, ServeConfig, Server};
use bsom_signature::BinaryVector;
use bsom_som::Prediction;

const VECTOR_LEN: usize = 256;

/// A served map whose snapshot stays frozen for the test (the trainer is
/// held alive but never fed), so wire answers can be compared bit-for-bit
/// against a direct `classify_batch`.
fn frozen_server(
    scheduler: SchedulerConfig,
) -> (Server, bsom_engine::Recognizer, bsom_engine::Trainer) {
    let corpus = synthetic_corpus(VECTOR_LEN, 4, 16, 12, 7);
    let (service, trainer) = bench_service(24, VECTOR_LEN, 7, &corpus);
    let recognizer = service.recognizer();
    let server = Server::bind(
        service,
        "127.0.0.1:0",
        ServeConfig {
            scheduler,
            ..ServeConfig::default()
        },
        None,
    )
    .expect("bind loopback");
    (server, recognizer, trainer)
}

fn probes(count: usize, seed: u64) -> Vec<BinaryVector> {
    let corpus = synthetic_corpus(VECTOR_LEN, 4, count.div_ceil(4), 30, seed);
    corpus.into_iter().map(|(v, _)| v).take(count).collect()
}

#[test]
fn wire_classification_matches_in_process_bit_for_bit() {
    let (server, mut recognizer, _trainer) = frozen_server(SchedulerConfig::default());
    let signatures = probes(40, 11);
    let direct = recognizer.classify_batch(signatures.clone());

    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let over_wire = client
        .classify(&signatures)
        .expect("classify over the wire");
    assert_eq!(over_wire, direct);

    // Distances survive the f64-bit round trip exactly, not approximately.
    assert!(over_wire
        .iter()
        .any(|p| matches!(p, Prediction::Known { .. })));
    server.join();
}

#[test]
fn pipelined_singletons_coalesce_into_one_engine_batch() {
    // A long deadline guarantees every pipelined singleton lands in the
    // scheduler's first collection window: N requests, one engine batch.
    let scheduler = SchedulerConfig {
        initial_delay: Duration::from_millis(300),
        max_delay: Duration::from_millis(300),
        ..SchedulerConfig::default()
    };
    let (server, mut recognizer, _trainer) = frozen_server(scheduler);
    let signatures = probes(16, 23);
    let direct = recognizer.classify_batch(signatures.clone());

    let (mut send, mut recv) = ServeClient::connect(server.local_addr())
        .expect("connect")
        .split();
    for signature in &signatures {
        send.send_classify(std::slice::from_ref(signature))
            .expect("pipelined send");
    }
    let mut answers = Vec::new();
    for _ in 0..signatures.len() {
        match recv.recv().expect("response").expect("not EOF") {
            WireMessage::ClassifyResponse { predictions } => {
                assert_eq!(predictions.len(), 1);
                answers.push(predictions[0]);
            }
            other => panic!("expected classify response, got {other:?}"),
        }
    }
    // Responses come back in request order and match the direct batch.
    assert_eq!(answers, direct);

    let stats = server.scheduler_snapshot();
    assert_eq!(stats.requests_dispatched, 16);
    assert_eq!(
        stats.batches_dispatched, 1,
        "16 pipelined singletons must coalesce into one engine batch: {stats:?}"
    );
    assert_eq!(stats.requests_coalesced, 16, "all 16 shared the batch");
    server.join();
}

#[test]
fn size_flush_fires_before_the_deadline() {
    // With a 5-second deadline but a 4-signature batch cap, a burst of 8
    // singletons must flush on size (twice), not wait out the deadline.
    let scheduler = SchedulerConfig {
        max_batch_signatures: 4,
        initial_delay: Duration::from_secs(5),
        max_delay: Duration::from_secs(5),
        ..SchedulerConfig::default()
    };
    let (server, _recognizer, _trainer) = frozen_server(scheduler);
    let signatures = probes(8, 31);
    let (mut send, mut recv) = ServeClient::connect(server.local_addr())
        .expect("connect")
        .split();
    let started = Instant::now();
    for signature in &signatures {
        send.send_classify(std::slice::from_ref(signature))
            .expect("send");
    }
    for _ in 0..signatures.len() {
        let message = recv.recv().expect("response").expect("not EOF");
        assert!(matches!(message, WireMessage::ClassifyResponse { .. }));
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "size flush must beat the 5s deadline (took {:?})",
        started.elapsed()
    );
    assert!(server.scheduler_snapshot().batches_dispatched >= 2);
    server.join();
}

/// A classifier the test can wedge: blocks inside `try_classify` until the
/// gate opens, so the scheduler queue can be filled deterministically.
struct GatedClassifier {
    gate: mpsc::Receiver<()>,
}

impl BatchClassify for GatedClassifier {
    fn try_classify(
        &mut self,
        signatures: Vec<BinaryVector>,
    ) -> Result<Vec<Prediction>, EngineError> {
        let _ = self.gate.recv();
        Ok(vec![Prediction::Unknown; signatures.len()])
    }
}

#[test]
fn admission_control_sheds_when_full_and_recovers() {
    let (gate_tx, gate_rx) = mpsc::channel();
    let batcher = MicroBatcher::new(
        GatedClassifier { gate: gate_rx },
        SchedulerConfig {
            queue_capacity: 2,
            initial_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..SchedulerConfig::default()
        },
    );
    let submit_one = |batcher: &MicroBatcher| {
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = ClassifyJob {
            signatures: vec![BinaryVector::zeros(8)],
            reply: reply_tx,
        };
        (batcher.submit(job), reply_rx)
    };
    // First job is picked up by the scheduler thread and wedges in the
    // classifier; give it a moment to leave the queue.
    let (first, first_reply) = submit_one(&batcher);
    assert!(first.is_ok());
    std::thread::sleep(Duration::from_millis(50));
    // The queue holds `queue_capacity` more; everything past that is shed
    // synchronously — the caller gets the job back, nothing blocks.
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for _ in 0..6 {
        match submit_one(&batcher) {
            (Ok(()), reply) => accepted.push(reply),
            (Err(_job), _) => shed += 1,
        }
    }
    assert!(shed >= 1, "a full queue must shed, not block");
    assert_eq!(accepted.len() + shed, 6);
    assert_eq!(batcher.snapshot().requests_shed as usize, shed);

    // Open the gate: the wedged batch and every accepted job complete —
    // the service recovers once load subsides.
    for _ in 0..16 {
        let _ = gate_tx.send(());
    }
    assert!(matches!(
        first_reply.recv().expect("wedged job completes"),
        BatchReply::Predictions(_)
    ));
    for reply in accepted {
        assert!(matches!(
            reply.recv().expect("accepted job completes"),
            BatchReply::Predictions(_)
        ));
    }
    let (after, after_reply) = submit_one(&batcher);
    assert!(after.is_ok(), "admission reopens after the backlog clears");
    assert!(matches!(
        after_reply.recv().expect("post-recovery job completes"),
        BatchReply::Predictions(_)
    ));
}

#[test]
fn health_drain_and_post_drain_rejection_over_the_wire() {
    let (server, _recognizer, _trainer) = frozen_server(SchedulerConfig::default());
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    let health = client.health().expect("health over the wire");
    assert!(!health.draining);
    assert_eq!(health.workers_alive, health.workers_configured);
    assert_eq!(health.worker_panics, 0);

    let summary = client.drain().expect("drain over the wire");
    assert!(!summary.checkpoint_written, "no hook was installed");
    assert_eq!(summary.final_version, health.snapshot_version);

    // Post-drain: health still answers (and says so); classify is refused
    // with the typed Draining error, not a hang or a dropped connection.
    let health = client.health().expect("health while draining");
    assert!(health.draining);
    match client.classify(&probes(1, 3)) {
        Err(bsom_serve::ClientError::Rejected { code, .. }) => {
            assert_eq!(code, ErrorCode::Draining);
        }
        other => panic!("expected a Draining rejection, got {other:?}"),
    }
    server.join();
}

#[test]
fn malformed_frames_get_an_error_response_not_a_dropped_socket() {
    let (server, _recognizer, _trainer) = frozen_server(SchedulerConfig::default());
    let (mut send, mut recv) = ServeClient::connect(server.local_addr())
        .expect("connect")
        .split();
    // A checksum-valid frame with a response kind is a protocol violation
    // from a client; the server must answer with a typed error, then hang
    // up cleanly.
    send.send(&WireMessage::OverloadedResponse {
        queue_depth: 0,
        queue_capacity: 0,
    })
    .expect("send protocol violation");
    match recv.recv().expect("error response").expect("not EOF") {
        WireMessage::ErrorResponse { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected an error response, got {other:?}"),
    }
    assert!(
        recv.recv().expect("clean EOF after hangup").is_none(),
        "server must close the connection after a protocol violation"
    );

    // A corrupted frame (bad checksum) likewise gets a typed error.
    let (mut send, mut recv) = ServeClient::connect(server.local_addr())
        .expect("connect")
        .split();
    let mut frame = wire::encode_classify_request(&probes(1, 5));
    let last = frame.len() - 1;
    frame[last] ^= 0xff;
    send.send_frame(&frame).expect("send corrupted frame");
    match recv.recv().expect("error response").expect("not EOF") {
        WireMessage::ErrorResponse { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected an error response, got {other:?}"),
    }
    server.join();
}
