//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`criterion_group!`]
//! and [`criterion_main!`] — backed by a simple wall-clock measurement loop
//! instead of criterion's statistical machinery. Each benchmark is warmed
//! up briefly, then timed over enough iterations to fill a short measurement
//! window, and the mean iteration time is printed as one line:
//!
//! ```text
//! bench group/name/param ... 12.345 µs/iter (81.0 Kelem/s)
//! ```
//!
//! This keeps `cargo bench` (and `cargo build --benches`) working offline
//! with useful relative numbers; swap in the real criterion for rigorous
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Target measurement window per benchmark.
    measurement_time: Duration,
    /// Warm-up window per benchmark.
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Runs `routine` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name, None, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            measurement_time: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Per-group measurement window; dies with the group, like in real
    /// criterion.
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's timing loop does not
    /// use a fixed sample count, so this is a no-op.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets this group's measurement window (clamped to 2 s to keep offline
    /// runs short). Scoped to the group, like in real criterion.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time.min(Duration::from_secs(2)));
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// The group's effective settings: the shared driver's, with this
    /// group's overrides applied.
    fn effective_criterion(&self) -> Criterion {
        let mut criterion = self.criterion.clone();
        if let Some(time) = self.measurement_time {
            criterion.measurement_time = time;
        }
        criterion
    }

    /// Runs `routine` as a benchmark inside this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &self.effective_criterion(),
            &label,
            self.throughput,
            &mut routine,
        );
        self
    }

    /// Runs `routine` with a borrowed input value.
    pub fn bench_with_input<I, InputT, F>(
        &mut self,
        id: I,
        input: &InputT,
        mut routine: F,
    ) -> &mut Self
    where
        I: Into<BenchmarkId>,
        InputT: ?Sized,
        F: FnMut(&mut Bencher, &InputT),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &self.effective_criterion(),
            &label,
            self.throughput,
            &mut |b: &mut Bencher| routine(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name, &self.parameter) {
            (name, Some(p)) if name.is_empty() => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: name,
            parameter: None,
        }
    }
}

/// Throughput basis for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Timing harness passed to benchmark routines.
#[derive(Debug)]
pub struct Bencher {
    /// Number of iterations the routine must run when `iter` is called.
    iterations: u64,
    /// Total elapsed time recorded by the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

fn run_benchmark<F>(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    routine: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: double the iteration count until the warm-up window is full.
    let mut iterations = 1u64;
    let mut per_iteration = Duration::from_secs(1);
    let warm_up_start = Instant::now();
    loop {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.elapsed > Duration::ZERO {
            per_iteration = bencher.elapsed / u32::try_from(iterations).unwrap_or(u32::MAX);
        }
        if warm_up_start.elapsed() >= criterion.warm_up_time || iterations >= 1 << 30 {
            break;
        }
        iterations = iterations.saturating_mul(2);
    }

    // Measurement: one batch sized to fill the measurement window.
    let target = criterion.measurement_time;
    let batch = if per_iteration.is_zero() {
        iterations
    } else {
        (target.as_nanos() / per_iteration.as_nanos().max(1)).clamp(1, 1 << 30) as u64
    };
    let mut bencher = Bencher {
        iterations: batch,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let mean = if batch > 0 {
        bencher.elapsed.as_secs_f64() / batch as f64
    } else {
        0.0
    };

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format_rate(n as f64 / mean.max(f64::MIN_POSITIVE), "elem/s"),
        Throughput::Bytes(n) => format_rate(n as f64 / mean.max(f64::MIN_POSITIVE), "B/s"),
    });
    match rate {
        Some(rate) => println!("bench {label} ... {} ({rate})", format_time(mean)),
        None => println!("bench {label} ... {}", format_time(mean)),
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s/iter")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms/iter", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs/iter", seconds * 1e6)
    } else {
        format!("{:.1} ns/iter", seconds * 1e9)
    }
}

fn format_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.2} G{unit}", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2} M{unit}", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2} K{unit}", per_second / 1e3)
    } else {
        format!("{per_second:.1} {unit}")
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
        };
        let mut runs = 0u64;
        criterion.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_with_inputs_and_throughput() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
        };
        let mut group = criterion.benchmark_group("group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| {
                total += n;
                total
            })
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn measurement_time_is_scoped_to_the_group() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
        };
        {
            let mut group = criterion.benchmark_group("first");
            group.measurement_time(Duration::from_millis(20));
            group.bench_function("noop", |b| b.iter(|| 1u8));
            group.finish();
        }
        // The group's override must not leak into the shared driver.
        assert_eq!(criterion.measurement_time, Duration::from_millis(10));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
