//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! sibling `serde` stand-in without depending on `syn`/`quote` (neither is
//! available offline). The derive input is parsed with a small hand-written
//! token walker that understands the shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums with unit, struct and tuple variants (externally tagged, like
//!   real serde's default representation),
//! * unbounded type parameters (each parameter gains a `Serialize` /
//!   `Deserialize` bound, mirroring serde's inferred bounds).
//!
//! `#[serde(...)]` attributes are **not** supported and will simply be
//! ignored by the token walker; none are used in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a `#[derive]` input item.
struct Item {
    name: String,
    /// Plain type-parameter names, in declaration order.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the stand-in `serde::Serialize` for structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(serialize_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let (impl_generics, ty_generics) = split_generics(&item.generics, "::serde::Serialize");
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive stand-in generated invalid Serialize impl")
}

/// Derives the stand-in `serde::Deserialize` for structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field_or_null(value, \"{f}\")?"))
                .collect();
            format!(
                "if value.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::expected(\"object\", value));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))".to_string()
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok(Self({inits})),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"array of length {n}\", other)),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Kind::Enum(variants) => deserialize_enum_body(variants),
    };
    let (impl_generics, ty_generics) = split_generics(&item.generics, "::serde::Deserialize");
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive stand-in generated invalid Deserialize impl")
}

/// One `match self` arm of an enum `to_value`.
fn serialize_arm(variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        VariantFields::Unit => {
            format!("Self::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),")
        }
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "Self::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::Value::Object(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
        VariantFields::Tuple(1) => format!(
            "Self::{v}(f0) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{v}\"), \
                  ::serde::Serialize::to_value(f0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let entries: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "Self::{v}({binds}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::Value::Array(::std::vec![{entries}]))]),",
                binds = binds.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

/// The full `from_value` body for an enum (externally tagged).
fn deserialize_enum_body(variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let name = &v.name;
            let build = match &v.fields {
                VariantFields::Unit => return None,
                VariantFields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field_or_null(inner, \"{f}\")?"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok(Self::{name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                VariantFields::Tuple(1) => format!(
                    "::std::result::Result::Ok(Self::{name}(\
                     ::serde::Deserialize::from_value(inner)?))"
                ),
                VariantFields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok(Self::{name}({inits})),\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::Error::expected(\"array of length {n}\", other)),\n\
                         }}",
                        inits = inits.join(", ")
                    )
                }
            };
            Some(format!("\"{name}\" => {build},"))
        })
        .collect();
    format!(
        "match value {{\n\
             ::serde::Value::String(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 _ => ::std::result::Result::Err(\
                     ::serde::Error::custom(format!(\"unknown variant `{{tag}}`\"))),\n\
             }},\n\
             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::custom(format!(\"unknown variant `{{tag}}`\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"enum variant\", other)),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n")
    )
}

/// Renders `impl<...>` and `<...>` generic lists with the given bound.
fn split_generics(generics: &[String], bound: &str) -> (String, String) {
    if generics.is_empty() {
        (String::new(), String::new())
    } else {
        let with_bounds: Vec<String> = generics.iter().map(|g| format!("{g}: {bound}")).collect();
        (
            format!("<{}>", with_bounds.join(", ")),
            format!("<{}>", generics.join(", ")),
        )
    }
}

// ---------------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive stand-in: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stand-in: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                *pos += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive stand-in: expected identifier, got {other:?}"),
    }
}

/// Parses `<A, B, ...>` after the item name, returning the type-parameter
/// names. Only plain, unbounded type parameters are supported (all this
/// workspace uses); bounds, defaults and lifetimes are rejected loudly.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*pos) else {
        return params;
    };
    if p.as_char() != '<' {
        return params;
    }
    *pos += 1;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *pos += 1;
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => *pos += 1,
            Some(TokenTree::Ident(id)) => {
                params.push(id.to_string());
                *pos += 1;
            }
            other => panic!(
                "serde_derive stand-in: unsupported generics token {other:?} \
                 (only plain type parameters are supported)"
            ),
        }
    }
    params
}

/// Extracts the field names from the brace body of a named-field struct.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive stand-in: expected `:` after field, got {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut pos);
    }
    fields
}

/// Advances past a type, stopping after the next comma at angle-depth 0.
fn skip_type_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts the comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type_until_comma(&tokens, &mut pos);
    }
    count
}

/// Parses the brace body of an enum into its variants.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional explicit discriminant, then the trailing comma.
        skip_type_until_comma(&tokens, &mut pos);
        variants.push(Variant { name, fields });
    }
    variants
}
