//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. This crate provides source-compatible `Serialize` /
//! `Deserialize` traits and derive macros for the patterns this workspace
//! uses (plain structs, tuple structs, enums with unit/struct/tuple
//! variants, one unbounded type parameter). Instead of serde's
//! visitor-based zero-copy architecture, both traits go through an owned
//! JSON-like [`Value`] tree; `serde_json` (the sibling stand-in) renders and
//! parses that tree.
//!
//! Supported field types: primitives, `String`, `Option`, `Vec`, arrays,
//! tuples (≤ 4), `BTreeMap`/`HashMap` with scalar-renderable keys, and any
//! type deriving or hand-implementing the traits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value — the interchange format between the
/// [`Serialize`] / [`Deserialize`] traits and the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer (kept exact; never routed through `f64`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Renders the value as a JSON map key, if it is scalar.
    fn as_map_key(&self) -> Result<String, Error> {
        match self {
            Value::String(s) => Ok(s.clone()),
            Value::UInt(n) => Ok(n.to_string()),
            Value::Int(n) => Ok(n.to_string()),
            Value::Bool(b) => Ok(b.to_string()),
            other => Err(Error::custom(format!(
                "map key must be a scalar, got {other:?}"
            ))),
        }
    }
}

/// Rebuilds a map key of type `K` from its JSON object-key string.
///
/// String-like key types must win over the numeric/boolean reinterpretation,
/// otherwise a `String` key that *looks* numeric (e.g. `"42"`) would be
/// re-typed to a number and fail to deserialize as a string.
fn key_from_str<K: Deserialize>(key: &str) -> Result<K, Error> {
    let as_string = Value::String(key.to_string());
    if let Ok(k) = K::from_value(&as_string) {
        return Ok(k);
    }
    let reinterpreted = if let Ok(n) = key.parse::<u64>() {
        Value::UInt(n)
    } else if let Ok(n) = key.parse::<i64>() {
        Value::Int(n)
    } else if key == "true" {
        Value::Bool(true)
    } else if key == "false" {
        Value::Bool(false)
    } else {
        as_string
    };
    K::from_value(&reinterpreted)
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Creates a "found X, expected Y"-style error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {got:?}"))
    }

    /// Creates a missing-field error.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], validating shape and types.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a required object field.
pub fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, Error> {
    value.get(name).ok_or_else(|| Error::missing_field(name))
}

/// Deserializes an object field, treating an absent field as `null` (used by
/// the derive macros).
///
/// This mirrors real serde's behaviour for `Option` fields: a missing field
/// deserializes to `None`, while non-optional field types reject `null` and
/// surface a missing-field error.
pub fn field_or_null<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v),
        None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = k
                        .to_value()
                        .as_map_key()
                        .expect("BTreeMap key must serialize to a scalar");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = k
                    .to_value()
                    .as_map_key()
                    .expect("HashMap key must serialize to a scalar");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn signed_integers_keep_sign() {
        assert_eq!((-7i32).to_value(), Value::Int(-7));
        assert_eq!(7i32.to_value(), Value::UInt(7));
        assert_eq!(i32::from_value(&Value::Int(-7)).unwrap(), -7);
    }

    #[test]
    fn u64_is_exact() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn btreemap_uses_scalar_keys() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "b".to_string());
        m.insert(1u32, "a".to_string());
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("1".into(), Value::String("a".into())),
                ("2".into(), Value::String("b".into())),
            ])
        );
        assert_eq!(BTreeMap::<u32, String>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn string_keys_that_look_numeric_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("42".to_string(), 1u32);
        m.insert("true".to_string(), 2u32);
        m.insert("plain".to_string(), 3u32);
        let v = m.to_value();
        assert_eq!(BTreeMap::<String, u32>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u8, -2i32, "x".to_string());
        let v = t.to_value();
        assert_eq!(<(u8, i32, String)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn missing_field_error_names_the_field() {
        let obj = Value::Object(vec![]);
        let err = field(&obj, "speed").unwrap_err();
        assert!(err.to_string().contains("speed"));
    }
}
