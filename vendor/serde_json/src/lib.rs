//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders and parses JSON against the owned [`serde::Value`] tree of the
//! sibling `serde` stand-in. Supports the full JSON grammar (objects,
//! arrays, strings with escapes, exact integers, floats, booleans, null);
//! integers round-trip exactly (they are never routed through `f64`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// A `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a value into its [`Value`] tree representation.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let value = parse(input)?;
    Ok(T::from_value(&value)?)
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips and
        // always keeps a decimal point or exponent, so floats stay floats.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no NaN/inf; match serde_json's lossy behaviour of `null`.
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part per the JSON grammar: `0` alone, or a non-zero digit
        // followed by more digits (no leading zeros, no bare `-`).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    return Err(Error::new(format!(
                        "leading zero in number at byte {start}"
                    )));
                }
            }
            Some(b) if b.is_ascii_digit() => {
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(Error::new(format!("invalid number at byte {start}"))),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(Error::new(format!(
                    "expected digit after decimal point at byte {}",
                    self.pos
                )));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(Error::new(format!(
                    "expected digit in exponent at byte {}",
                    self.pos
                )));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "0", "-5", "18446744073709551615"] {
            let v = parse(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        assert_eq!(parse(&s).unwrap(), Value::Float(1.0));
    }

    #[test]
    fn u64_values_are_exact() {
        let big = u64::MAX - 3;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let json = r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#;
        let v = parse(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600}".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        let json = "\"A\\u00e9\\uD83D\\uDE00\"";
        let v: String = from_str(json).unwrap();
        assert_eq!(v, "A\u{e9}\u{1F600}");
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn enforces_the_json_number_grammar() {
        for bad in ["01", "-01", "1.", "-.5", ".5", "-", "1e", "1e+", "00"] {
            assert!(parse(bad).is_err(), "`{bad}` should be rejected");
        }
        assert_eq!(parse("0").unwrap(), Value::UInt(0));
        assert_eq!(parse("-0.5").unwrap(), Value::Float(-0.5));
        assert_eq!(parse("1e-5").unwrap(), Value::Float(1e-5));
        assert_eq!(parse("10").unwrap(), Value::UInt(10));
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct WithOptional {
        required: u32,
        optional: Option<u32>,
    }

    #[test]
    fn missing_optional_field_deserializes_to_none() {
        // Mirrors real serde: absent Option fields default to None, absent
        // required fields are an error.
        let v: WithOptional = from_str(r#"{"required":1}"#).unwrap();
        assert_eq!(
            v,
            WithOptional {
                required: 1,
                optional: None
            }
        );
        let err = from_str::<WithOptional>(r#"{"optional":2}"#).unwrap_err();
        assert!(err.to_string().contains("required"));
    }
}
