//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` cannot be fetched from a registry. This crate implements the
//! *subset* of the rand 0.8 API that the workspace actually uses, backed by
//! the xoshiro256++ generator seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads (it is the same
//! generator family the real `rand`/`rand_xoshiro` ships).
//!
//! Supported surface:
//!
//! * [`RngCore`] / [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`]
//! * [`Rng::gen`] for `bool`, all primitive ints and `f32`/`f64`
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of ints and floats
//! * [`Rng::gen_bool`]
//!
//! Anything outside this subset is intentionally absent; add it here if a
//! new workspace crate needs it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce (the `Standard` distribution of the
/// real crate, folded into a single trait).
pub trait StandardSample: Sized {
    /// Draws a uniformly distributed value from the full domain of the type
    /// (for floats: the half-open unit interval `[0, 1)`).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a caller-provided range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`; panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`; panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, width)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return rng.next_u64() & (width - 1);
    }
    let zone = u64::MAX - (u64::MAX % width);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % width;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let width = (high as i128 - low as i128) as u64;
                let offset = uniform_u64(rng, width);
                (low as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let width = (high as i128 - low as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/u128-degenerate span.
                    return <$t as StandardSample>::standard_sample(rng);
                }
                let offset = uniform_u64(rng, width as u64);
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let unit = <$t as StandardSample>::standard_sample(rng);
                let v = low + unit * (high - low);
                // Floating-point rounding can land exactly on `high`.
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let unit = <$t as StandardSample>::standard_sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64 — the
    /// stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_half_open_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = rng.gen_range(-1i16..=1);
            seen[(v + 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&v));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}
