//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest).
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`],
//! [`ProptestConfig::with_cases`], [`any`] for primitives, range and tuple
//! strategies, [`Strategy::prop_map`] and `prop::collection::vec`.
//!
//! Differences from the real crate, chosen for an offline environment:
//!
//! * Cases are generated from a seed derived **deterministically from the
//!   test name**, so runs are reproducible without a persistence file.
//! * There is no shrinking: a failing case reports its case index and seed
//!   instead of a minimised counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Returns the default configuration with the case count replaced.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property-test assertion (created by [`prop_assert!`]).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies while generating a case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator for `case` of the test named `test_name`.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name keeps seeds stable across runs and
        // distinct across tests; the case index perturbs the stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Strategy for the full domain of a type (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Returns the full-domain strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite full-domain values (random sign, magnitudes from subnormal
        // to ~1e90), approximating real proptest's default f64 strategy
        // (which also excludes inf/NaN).
        let unit: f64 = rng.gen();
        let exponent: i32 = rng.gen_range(-300..300);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * unit * 2f64.powi(exponent)
    }
}

/// Namespace mirror of `proptest::prop` (only `collection` is provided).
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Strategy producing `Vec`s of values from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Builds a [`VecStrategy`] with a fixed or ranged length.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.size.min >= self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Length specification accepted by `prop::collection::vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound; equal to `min` for exact sizes.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(error) = outcome {
                    panic!(
                        "proptest case {case} of {cases} failed: {error}",
                        cases = config.cases,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges_generate_in_bounds", 0);
        for _ in 0..1000 {
            let v = (0u64..10).generate(&mut rng);
            assert!(v < 10);
        }
    }

    #[test]
    fn vec_strategy_respects_exact_and_ranged_sizes() {
        let mut rng = crate::TestRng::for_case("vec_sizes", 0);
        let exact = prop::collection::vec(any::<bool>(), 7).generate(&mut rng);
        assert_eq!(exact.len(), 7);
        for _ in 0..100 {
            let ranged = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&ranged.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u32..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x, 100);
        }

        #[test]
        fn prop_map_applies_function(doubled in (0u32..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }
}
